"""Fleet-scale sharded execution of the windowed-PSA engine.

:class:`FleetRunner` runs many recordings — or the window shards of one
huge recording — across a pool of worker processes, each driving the
same batched :meth:`FastLomb.periodogram_batch` pipeline the
single-process path uses:

1. the parent validates every recording and lays out its windows
   (:meth:`WelchLomb.plan_windows`), then shards the kept windows into
   contiguous ranges (:mod:`repro.fleet.sharding`);
2. recording arrays go into POSIX shared memory once
   (:mod:`repro.fleet.shm`); workers slice windows out of the mapped
   blocks zero-copy, so the task queue carries only index ranges;
3. the parent warms every execution-time plan cache **before** the pool
   forks, so workers inherit twiddle tables, pruning masks and whole
   kernel plans copy-on-write instead of rebuilding them per worker;
4. per-shard spectra are reassembled in window order and fed through
   the same :func:`~repro.lomb.welch.assemble_result` back end as the
   single-process path, making the merged spectrograms, Welch averages
   and operation counts identical to it by construction (bit-exact:
   every per-window quantity is computed by composition-independent
   kernels).

``n_jobs=1`` runs the identical shard/merge pipeline in-process — no
pool, no shared memory — which keeps the merge machinery exercised by
fast tests.  With ``n_jobs > 1`` the worker pool is **persistent**:
repeated :meth:`FleetRunner.run` calls (the serving pattern) reuse it,
paying the fork/initialise cost once; call :meth:`FleetRunner.close`
(or use the runner as a context manager) when done.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
import weakref
from collections import deque
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, SignalError
from ..hrv.rr import RRSeries
from ..lomb.fast import get_batch_chunk_windows, pinned_execution
from ..lomb.welch import (
    RecordingWindows,
    WelchLomb,
    WelchLombResult,
    analyze_spans_quality,
    assemble_result,
)
from ..ffts.plancache import warm_execution_caches
from ..ffts.providers.registry import resolve_provider_name
from .remote import DEFAULT_TIMEOUT, RemoteTaskError, RemoteWorker
from .sharding import (
    DEFAULT_MIN_WINDOWS_PER_SHARD,
    DEFAULT_OVERSUBSCRIPTION,
    plan_shards,
)
from .shm import SharedRecordingStore
from .transport import parse_address
from .worker import (
    ShardTask,
    SpanBatchTask,
    init_worker,
    pack_metrics,
    pack_spectra,
    run_shard,
    run_span_batch,
    unpack_metrics,
    unpack_spectra,
)

__all__ = ["FleetReport", "FleetRunner"]

#: Fewest windows a :meth:`FleetRunner.run_spans` pool slice may carry —
#: below this, splitting a span batch across more workers costs more in
#: task dispatch than the extra parallelism recovers.
MIN_SPANS_PER_SLICE = 8

#: Seconds between result polls while watching the pool for dead workers.
_POOL_POLL_SECONDS = 0.2


def _terminate_abandoned_pool(pool) -> None:
    """`weakref.finalize` safety net for unreleased worker pools.

    A :class:`FleetRunner` (or the :class:`~repro.engine.Engine` that
    owns one) abandoned without :meth:`FleetRunner.close` must not
    strand live worker processes — at garbage collection, and at
    interpreter exit at the latest (``weakref.finalize`` registers
    atexit), the pool is torn down hard.
    """
    pool.terminate()
    pool.join()


@dataclass(frozen=True)
class _WireTask:
    """Executor-agnostic unit of scheduled work: spans over keyed arrays.

    The distributed scheduler's common currency — a local pool slot
    turns it into a :class:`~repro.fleet.worker.SpanBatchTask` over shm
    refs, a remote slot ships the referenced arrays once and the spans
    as index pairs (:class:`~repro.fleet.remote.RemoteWorker`), and the
    in-process slot analyses it directly.  All three produce the same
    packed spectra.
    """

    task_id: int
    times_key: int
    values_key: int
    spans: tuple[tuple[int, int], ...]
    count_ops: bool
    #: Quality variant — ``None`` (base engine) or a
    #: ``(system_kind, PruningSpec)`` ladder rung (load shedding).
    variant: tuple | None = None
    #: Array key of the interpolated-beat 0/1 mask (``None`` when the
    #: batch carries no provenance).
    corrected_key: int | None = None


class _TaskBoard:
    """Thread-safe work queue with reassignment, for the fleet scheduler.

    Tasks are integer ids.  Executor threads :meth:`claim` one, then
    either :meth:`complete` it with a result, :meth:`requeue` it (their
    worker died — some other executor will re-run it; results are
    merged order-independently so re-execution is safe), or
    :meth:`abort` the whole board (deterministic failure that would
    reproduce anywhere).  Every claimed task is always returned by one
    of the three, so the queue-empty/none-in-flight state is decisive.
    """

    def __init__(self, n_tasks: int):
        self._cond = threading.Condition()
        self._queue: deque[int] = deque(range(n_tasks))
        self._results: dict[int, object] = {}
        self._n = n_tasks
        self._failure: BaseException | None = None

    def claim(self) -> int | None:
        """Next task id to run, or ``None`` when the board is finished."""
        with self._cond:
            while True:
                if self._failure is not None or len(self._results) == self._n:
                    return None
                if self._queue:
                    return self._queue.popleft()
                self._cond.wait()

    def complete(self, task_id: int, result) -> None:
        with self._cond:
            self._results[task_id] = result
            self._cond.notify_all()

    def requeue(self, task_id: int) -> None:
        with self._cond:
            self._queue.append(task_id)
            self._cond.notify_all()

    def abort(self, failure: BaseException) -> None:
        with self._cond:
            if self._failure is None:
                self._failure = failure
            self._cond.notify_all()

    def wait(self) -> None:
        """Block until every task completed or the board aborted."""
        with self._cond:
            while self._failure is None and len(self._results) < self._n:
                self._cond.wait()

    @property
    def failure(self) -> BaseException | None:
        with self._cond:
            return self._failure

    def results_in_order(self) -> list:
        with self._cond:
            return [self._results[i] for i in range(self._n)]


@dataclass(frozen=True)
class FleetReport:
    """A fleet run's results plus its execution geometry.

    Attributes
    ----------
    results:
        One :class:`WelchLombResult` per input recording, in order.
    n_jobs:
        Worker processes used (1 means the in-process path ran).
    n_shards:
        Window shards the cohort was split into.
    chunk_windows:
        Batch sub-batch size every process ran with.
    start_method:
        Multiprocessing start method (``None`` for the in-process path).
    provider:
        Resolved FFT execution provider every process was pinned to.
    n_remote_workers:
        Remote worker daemons that served this run (0 for local-only).
    """

    results: tuple[WelchLombResult, ...]
    n_jobs: int
    n_shards: int
    chunk_windows: int
    start_method: str | None
    provider: str | None = None
    n_remote_workers: int = 0


class FleetRunner:
    """Multiprocess cohort runner over the batched Welch-Lomb engine.

    Parameters
    ----------
    welch:
        The windowed engine to replicate into every worker; defaults to
        a paper-standard :class:`WelchLomb` (2-minute windows, 50 %
        overlap, denormalized scaling).
    n_jobs:
        Worker processes; ``None`` means one per available CPU.
    start_method:
        ``multiprocessing`` start method; ``None`` prefers ``fork``
        (copy-on-write plan-cache inheritance) where available.
    min_windows_per_shard, oversubscription:
        Shard-granularity knobs, see :func:`repro.fleet.sharding.plan_shards`.
    chunk_windows:
        Batch sub-batch size to pin across the fleet; ``None`` resolves
        the host-tuned value (:func:`repro.lomb.fast.get_batch_chunk_windows`).
    provider:
        FFT execution provider to pin across the fleet; ``None``
        resolves the registry chain
        (:func:`repro.ffts.providers.registry.resolve_provider_name`)
        **once in the parent** — the resolved name is installed in
        every worker so all shards round identically, which is what
        keeps sharded results bit-identical to single-process ones
        under every provider.
    arena:
        Install a per-process :class:`~repro.perf.WorkspaceArena` in
        every worker (pre-warmed with the fleet's hot kernel shapes) so
        steady-state shards reuse buffers instead of reallocating them;
        never affects results.
    workers:
        ``host:port`` addresses of remote :class:`~repro.fleet.remote.WorkerDaemon`
        processes to schedule shards onto alongside the local slots.
        Requires ``config`` (the daemon rebuilds the engine from it).
    worker_timeout:
        Seconds of remote silence (no heartbeat) before a worker is
        presumed dead and its shard reassigned.
    config:
        The :class:`~repro.engine.EngineConfig` describing ``welch``,
        serialized to remote daemons at handshake.  Only needed when
        ``workers`` is non-empty.
    """

    def __init__(
        self,
        welch: WelchLomb | None = None,
        n_jobs: int | None = None,
        start_method: str | None = None,
        min_windows_per_shard: int = DEFAULT_MIN_WINDOWS_PER_SHARD,
        oversubscription: int = DEFAULT_OVERSUBSCRIPTION,
        chunk_windows: int | None = None,
        provider: str | None = None,
        arena: bool = True,
        workers: Sequence[str] = (),
        worker_timeout: float = DEFAULT_TIMEOUT,
        config=None,
    ):
        self.welch = welch if welch is not None else WelchLomb()
        if n_jobs is None:
            n_jobs = os.cpu_count() or 1
        if n_jobs < 1:
            raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.min_windows_per_shard = int(min_windows_per_shard)
        self.oversubscription = int(oversubscription)
        self._chunk_windows = chunk_windows
        self._provider = provider
        self._arena = bool(arena)
        self.workers = tuple(workers or ())
        for address in self.workers:
            parse_address(address)  # reject malformed addresses up front
        self.worker_timeout = float(worker_timeout)
        self._config = config
        if self.workers and config is None:
            raise ConfigurationError(
                "remote workers need the EngineConfig that describes the "
                "engine: pass config=, or build the runner via from_config()"
            )
        self._pool = None
        self._pool_key: tuple[int, str] | None = None
        self._pool_finalizer: weakref.finalize | None = None
        self._pool_processes: list = []
        self._progress = None
        self._progress_lock = threading.Lock()
        self._last_task_by_pid: dict[int, int] = {}
        # _remotes is the *live* set one run schedules onto; the
        # registry keeps every RemoteWorker ever dialled so cumulative
        # transport counters (bytes, reconnects) survive close() and
        # between-run disconnects.
        self._remotes: dict[str, RemoteWorker] = {}
        self._remote_registry: dict[str, RemoteWorker] = {}
        self._remote_ever: set[str] = set()
        self._remote_key: tuple[int, str] | None = None
        # Quality-variant engines (degraded ladder levels), built
        # lazily from the config — the runner-side mirror of
        # Engine._variants for the in-process scheduling paths.
        self._variants: dict = {}

    @classmethod
    def from_config(cls, config, welch: WelchLomb | None = None, **kwargs):
        """Runner matching one :class:`~repro.engine.EngineConfig`.

        Execution settings (jobs, chunk size, provider) are resolved
        through the config's documented precedence chain; ``welch``
        defaults to the engine the config's system kind and geometry
        describe.  The engine facade
        (:meth:`repro.engine.Engine.analyze_cohort`) is the usual owner
        of a runner built this way — it keeps the pool persistent
        across cohort calls.
        """
        if welch is None:
            from ..engine.engine import build_system

            welch = build_system(config).welch
        resolved = config.resolve()
        kwargs.setdefault("workers", getattr(resolved, "workers", ()))
        kwargs.setdefault("config", config)
        return cls(
            welch=welch,
            n_jobs=resolved.jobs,
            chunk_windows=resolved.chunk_windows,
            provider=resolved.provider,
            arena=getattr(config, "arena", True),
            **kwargs,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(recording):
        """Accept an :class:`RRSeries` or a ``(times, values)`` pair.

        Returns ``(times, values, corrected)``; the mask is ``None``
        unless the recording is an :class:`RRSeries` carrying one.
        """
        if isinstance(recording, RRSeries):
            return recording.times, recording.intervals, recording.corrected
        try:
            times, values = recording
        except (TypeError, ValueError):
            raise SignalError(
                "recordings must be RRSeries or (times, values) pairs"
            ) from None
        return times, values, None

    def run(self, recordings, count_ops: bool = False) -> list[WelchLombResult]:
        """Analyse a cohort; one :class:`WelchLombResult` per recording."""
        return list(self.run_report(recordings, count_ops=count_ops).results)

    def run_report(self, recordings, count_ops: bool = False) -> FleetReport:
        """:meth:`run` plus the execution geometry (shards, jobs, chunk)."""
        pairs = [self._coerce(recording) for recording in recordings]
        if not pairs:
            raise SignalError("cohort is empty: nothing to analyse")
        plans = [
            self.welch.plan_windows(t, x, corrected=c) for t, x, c in pairs
        ]
        for plan in plans:
            if not plan.spans:
                raise SignalError(
                    "no analysable windows: recording too short or too sparse"
                )
        shards = plan_shards(
            [plan.n_windows for plan in plans],
            self.n_jobs + len(self.workers),
            min_windows_per_shard=self.min_windows_per_shard,
            oversubscription=self.oversubscription,
        )
        chunk, provider = self._resolve_execution()
        n_remote = 0
        if self.workers:
            # Distributed path: shard geometry above already counted the
            # remote slots; spectra merge order-independently, so which
            # slot ran which shard can never change the result.
            arrays: list[np.ndarray] = []
            keys: list[tuple[int, int, int | None]] = []
            for plan in plans:
                t_key = len(arrays)
                arrays.append(plan.times)
                x_key = len(arrays)
                arrays.append(plan.values)
                c_key = None
                if plan.corrected is not None:
                    c_key = len(arrays)
                    arrays.append(plan.corrected)
                keys.append((t_key, x_key, c_key))
            tasks = [
                _WireTask(
                    task_id=shard_id,
                    times_key=keys[shard.recording][0],
                    values_key=keys[shard.recording][1],
                    spans=plans[shard.recording].spans[shard.lo : shard.hi],
                    count_ops=count_ops,
                    corrected_key=keys[shard.recording][2],
                )
                for shard_id, shard in enumerate(shards)
            ]
            packed, n_remote = self._run_scheduled(
                arrays, tasks, chunk, provider
            )
            n_jobs = self.n_jobs
            used_method = self.start_method if self.n_jobs > 1 else None
        elif self.n_jobs == 1:
            packed = self._run_in_process(
                plans, shards, count_ops, chunk, provider
            )
            n_jobs, used_method = 1, None
        else:
            packed = self._run_pool(plans, shards, count_ops, chunk, provider)
            n_jobs, used_method = self.n_jobs, self.start_method
        results = self._merge(plans, shards, packed, count_ops)
        return FleetReport(
            results=tuple(results),
            n_jobs=n_jobs,
            n_shards=len(shards),
            chunk_windows=chunk,
            start_method=used_method,
            provider=provider,
            n_remote_workers=n_remote,
        )

    def close(self) -> None:
        """Shut the pool and remote connections down (idempotent)."""
        self._close_remotes()
        self._detach_finalizer()
        pool, self._pool = self._pool, None
        self._pool_key = None
        self._pool_processes = []
        self._progress = None
        if pool is not None:
            pool.close()
            pool.join()

    def _close_remotes(self) -> None:
        """Say goodbye to every connected remote daemon (best-effort).

        Connections close; the worker handles stay in the registry so
        their cumulative counters keep accumulating across reconnects.
        """
        self._remotes = {}
        self._remote_key = None
        for worker in self._remote_registry.values():
            worker.close()

    def transport_stats(self) -> dict[str, dict[str, int]]:
        """Cumulative transport counters per remote worker ever dialled.

        Per address: ``bytes_sent`` / ``bytes_received`` (wire traffic,
        cumulative across reconnects — used by the fleet benchmark to
        quantify serialization overhead per window), ``reconnects``
        (successful re-connections after the first) and
        ``connect_failures`` (failed dial attempts).  Empty when no
        remote workers were ever configured.
        """
        return {
            address: {
                "bytes_sent": worker.bytes_sent,
                "bytes_received": worker.bytes_received,
                "reconnects": worker.reconnects,
                "connect_failures": worker.connect_failures,
            }
            for address, worker in self._remote_registry.items()
        }

    def _detach_finalizer(self) -> None:
        finalizer, self._pool_finalizer = self._pool_finalizer, None
        if finalizer is not None:
            finalizer.detach()

    def _discard_pool(self) -> None:
        """Tear the live pool down hard and forget every handle to it.

        The failure path: queued sibling tasks must not keep running
        against unlinked shared memory, and both ``_pool`` *and*
        ``_pool_key`` must be cleared together — a stale key paired
        with a fresh pool would claim the wrong execution settings.
        """
        self._detach_finalizer()
        pool, self._pool = self._pool, None
        self._pool_key = None
        self._pool_processes = []
        self._progress = None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "FleetRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _variant_welch(self, variant) -> WelchLomb:
        """The engine a quality variant selects (``None`` = base).

        Used by the scheduling paths that execute in *this* process
        (the small-batch shortcut and the ``n_jobs == 1`` local slot);
        pool workers and remote daemons hold their own mirrors of this
        cache.  Requires the engine config — a runner built without one
        cannot be asked to shed quality.
        """
        if variant is None:
            return self.welch
        if self._config is None:
            raise ConfigurationError(
                "quality-variant span batches need the EngineConfig that "
                "describes the engine: pass config= to FleetRunner"
            )
        welch = self._variants.get(variant)
        if welch is None:
            from ..engine.engine import build_system

            system_kind, pruning = variant
            welch = build_system(
                self._config.replace(system=system_kind, pruning=pruning)
            ).welch
            self._variants[variant] = welch
        return welch

    def _resolve_execution(self) -> tuple[int, str]:
        """Resolve the (chunk, provider) pair one run executes under.

        Shared by every entry point (:meth:`run_report`,
        :meth:`run_spans`): the provider is resolved once, in the
        parent, so every process — including this one on the
        in-process paths — runs the same engine (results are
        provider-dependent at the ulp level; one fleet must round one
        way).
        """
        workspace = self.welch.analyzer.workspace_size
        chunk = (
            self._chunk_windows
            if self._chunk_windows is not None
            else get_batch_chunk_windows(workspace)
        )
        return chunk, resolve_provider_name(self._provider, workspace)

    def _run_in_process(
        self,
        plans: list[RecordingWindows],
        shards,
        count_ops: bool,
        chunk: int,
        provider: str,
    ) -> list[list[tuple]]:
        """Single-process execution of the identical shard pipeline."""
        with pinned_execution(provider, chunk):
            packed: list[tuple] = []
            for shard in shards:
                plan = plans[shard.recording]
                spectra, metrics = analyze_spans_quality(
                    self.welch.analyzer,
                    plan.times,
                    plan.values,
                    plan.spans[shard.lo : shard.hi],
                    count_ops,
                    corrected=plan.corrected,
                )
                packed.append((pack_spectra(spectra), pack_metrics(metrics)))
            return packed

    def _ensure_pool(self, chunk: int, provider: str):
        """Create (or reuse) the persistent worker pool.

        The pool outlives individual :meth:`run` calls so repeated
        cohort runs — the serving pattern — pay the fork/initialise
        cost once.  Pre-fork warm-up happens right before creation:
        with the fork start method the workers inherit every plan-cache
        table — including the resolved provider's per-size execution
        state — copy-on-write, so nothing is re-derived N-workers
        times.  (Plan objects themselves were built when the engine was
        constructed.)
        """
        if self._pool is not None and self._pool_key == (chunk, provider):
            return self._pool
        self.close()
        analyzer = self.welch.analyzer
        warm_execution_caches(analyzer.workspace_size, analyzer.order, provider)
        ctx = multiprocessing.get_context(self.start_method)
        self._progress = ctx.Queue()
        self._last_task_by_pid = {}
        self._pool = ctx.Pool(
            processes=self.n_jobs,
            initializer=init_worker,
            initargs=(
                self.welch, chunk, provider, self._arena, self._progress,
                self._config,
            ),
        )
        self._pool_key = (chunk, provider)
        # Hold our own references to the worker Process objects: the
        # pool quietly replaces dead workers in its internal list, but
        # these handles keep reporting the original pid and exit code,
        # which is what the death watchdog needs to name the culprit.
        self._pool_processes = list(getattr(self._pool, "_pool", []))
        # Safety net for abandoned runners: if this runner is garbage
        # collected (or the interpreter exits) with the pool still
        # live, tear it down rather than strand the workers.  close()
        # detaches this, so an orderly release never terminates.
        self._pool_finalizer = weakref.finalize(
            self, _terminate_abandoned_pool, self._pool
        )
        return self._pool

    def _drain_progress(self) -> None:
        """Absorb queued ``(pid, task_id)`` task-start records."""
        progress = self._progress
        if progress is None:
            return
        with self._progress_lock:
            while True:
                try:
                    pid, task_id = progress.get_nowait()
                except queue_module.Empty:
                    return
                except (EOFError, OSError):  # queue torn down under us
                    return
                self._last_task_by_pid[pid] = task_id

    def _raise_if_pool_worker_died(self) -> None:
        """Turn a silently vanished pool worker into an actionable error.

        ``multiprocessing.Pool`` never errors a job whose worker died —
        the result simply never arrives and collection blocks forever.
        The watchdog checks the held worker-process handles and raises a
        :class:`RuntimeError` naming the dead worker's pid, its exit
        code, and the last task it reported starting.
        """
        self._drain_progress()
        for process in self._pool_processes:
            code = process.exitcode
            if code is not None:
                last = self._last_task_by_pid.get(process.pid)
                held = "" if last is None else f" while running task {last}"
                raise RuntimeError(
                    f"fleet pool worker pid {process.pid} died with exit "
                    f"code {code}{held}: its results are lost and the run "
                    f"cannot complete"
                )

    def _collect_unordered(self, iterator, collected: list) -> None:
        """Drain an ``imap_unordered`` iterator, watching for dead workers.

        Polls with a short timeout so a worker death turns into the
        watchdog's diagnostic instead of an indefinite hang.
        """
        remaining = len(collected)
        while remaining:
            try:
                task_id, packed = iterator.next(timeout=_POOL_POLL_SECONDS)
            except multiprocessing.TimeoutError:
                self._raise_if_pool_worker_died()
                continue
            except StopIteration:  # pragma: no cover - remaining hits 0 first
                break
            collected[task_id] = packed
            remaining -= 1

    def _run_pool(
        self,
        plans: list[RecordingWindows],
        shards,
        count_ops: bool,
        chunk: int,
        provider: str,
    ) -> list[list[tuple]]:
        """Dispatch shards over the worker pool, shared-memory backed."""
        pool = self._ensure_pool(chunk, provider)
        collected: list[tuple | None] = [None] * len(shards)
        with SharedRecordingStore() as store:
            refs = [
                (
                    store.put(plan.times),
                    store.put(plan.values),
                    None
                    if plan.corrected is None
                    else store.put(plan.corrected),
                )
                for plan in plans
            ]
            tasks = [
                ShardTask(
                    shard_id=shard_id,
                    recording=shard.recording,
                    times_ref=refs[shard.recording][0],
                    values_ref=refs[shard.recording][1],
                    spans=plans[shard.recording].spans[shard.lo : shard.hi],
                    count_ops=count_ops,
                    corrected_ref=refs[shard.recording][2],
                )
                for shard_id, shard in enumerate(shards)
            ]
            try:
                self._collect_unordered(
                    pool.imap_unordered(run_shard, tasks), collected
                )
            except BaseException:
                # A failed shard leaves queued siblings behind; tear the
                # pool down rather than let them run against unlinked
                # shared memory.
                self._discard_pool()
                raise
        return collected  # every slot filled: imap yields one per task

    @staticmethod
    def _flatten_collected(collected) -> tuple[list, tuple]:
        """Concatenate per-slice packed results back into span order."""
        spectra = [
            spectrum
            for packed, _metrics in collected
            for spectrum in unpack_spectra(packed)
        ]
        metrics = tuple(
            window
            for _packed, packed_metrics in collected
            for window in unpack_metrics(packed_metrics)
        )
        return spectra, metrics

    def run_spans(
        self, times, values, spans, count_ops: bool = False, variant=None,
        corrected=None,
    ) -> tuple[list, tuple]:
        """Analyse one flat span batch, dispatching over the pool.

        The streaming hub's execution path: ``times``/``values`` are one
        validated sample array pair — typically many subjects' completed
        windows concatenated back to back — and ``spans`` are its
        ``[start, stop)`` window ranges.  With ``n_jobs > 1`` the spans
        are split into contiguous slices over the **persistent** worker
        pool (created on first use, shared with :meth:`run`), the
        arrays travel once through the shm transport, and the spectra
        come back in span order; ``n_jobs == 1`` (or a batch too small
        to split) runs in-process.  Either way the result is
        bit-identical to a single in-process
        :func:`~repro.lomb.welch.analyze_spans_quality` call: every
        kernel is batch-composition-independent and every process is
        pinned to the same provider and chunk size.

        ``variant`` runs the whole batch at a degraded quality level (a
        ``(system_kind, PruningSpec)`` ladder rung): every slice
        carries the variant to its executor, and each executor resolves
        it against its own cached variant engine — so a level-M batch
        is bit-identical across the in-process, shm-pool and socket
        transports, exactly like the base engine.

        ``corrected`` is the optional interpolated-beat 0/1 mask
        aligned with ``values``; it travels to the executors exactly
        like the sample arrays.  Returns ``(spectra, metrics)`` with
        one :class:`~repro.hrv.metrics.WindowMetrics` per span.
        """
        spans = tuple(spans)
        if not spans:
            return [], ()
        chunk, provider = self._resolve_execution()
        n_slots = self.n_jobs + len(self.workers)
        n_slices = max(
            1, min(n_slots, len(spans) // MIN_SPANS_PER_SLICE)
        )
        if n_slices == 1:
            # n_jobs == 1, or a batch too small to split: a single
            # pool slice would pay shm setup + IPC per flush for work
            # the (identically pinned, hence bit-identical) in-process
            # call does cheaper.
            with pinned_execution(provider, chunk):
                return analyze_spans_quality(
                    self._variant_welch(variant).analyzer,
                    times, values, spans, count_ops, corrected=corrected,
                )
        bounds = [len(spans) * i // n_slices for i in range(n_slices + 1)]
        if self.workers:
            arrays = [np.asarray(times), np.asarray(values)]
            corrected_key = None
            if corrected is not None:
                corrected_key = len(arrays)
                arrays.append(np.asarray(corrected))
            wire_tasks = [
                _WireTask(
                    task_id=batch_id,
                    times_key=0,
                    values_key=1,
                    spans=spans[lo:hi],
                    count_ops=count_ops,
                    variant=variant,
                    corrected_key=corrected_key,
                )
                for batch_id, (lo, hi) in enumerate(
                    zip(bounds[:-1], bounds[1:])
                )
            ]
            collected, _ = self._run_scheduled(
                arrays, wire_tasks, chunk, provider
            )
            return self._flatten_collected(collected)
        pool = self._ensure_pool(chunk, provider)
        collected: list[tuple | None] = [None] * n_slices
        with SharedRecordingStore() as store:
            times_ref = store.put(times)
            values_ref = store.put(values)
            corrected_ref = (
                None if corrected is None else store.put(corrected)
            )
            tasks = [
                SpanBatchTask(
                    batch_id=batch_id,
                    times_ref=times_ref,
                    values_ref=values_ref,
                    spans=spans[lo:hi],
                    count_ops=count_ops,
                    variant=variant,
                    corrected_ref=corrected_ref,
                )
                for batch_id, (lo, hi) in enumerate(
                    zip(bounds[:-1], bounds[1:])
                )
            ]
            try:
                self._collect_unordered(
                    pool.imap_unordered(run_span_batch, tasks), collected
                )
            except BaseException:
                self._discard_pool()
                raise
        return self._flatten_collected(collected)

    # -- distributed scheduling ----------------------------------------

    def _hello(self, chunk: int, provider: str) -> dict:
        """Handshake payload: config blob plus the parent-resolved pins.

        The daemon rebuilds the engine from the config but never
        re-resolves provider or chunk — two hosts may auto-probe
        differently, and one fleet must round one way.
        """
        return {
            "config": self._config.to_dict(),
            "provider": provider,
            "chunk_windows": int(chunk),
            "arena": self._arena,
        }

    def _ensure_remotes(self, chunk: int, provider: str) -> dict[str, RemoteWorker]:
        """Connect (or reuse) the remote workers for one run.

        A *first-ever* connection failure raises
        :class:`~repro.errors.ConfigurationError` — an address that has
        never answered is almost always a typo, and silently running
        without it would misreport capacity.  A worker that has served
        before and is now gone is a runtime fault: it is skipped for
        this run (and retried on the next), because absorbing degraded
        capacity is exactly what the fault-tolerant scheduler is for.
        """
        if self._remote_key != (chunk, provider):
            # Execution pins changed: every open session's handshake is
            # stale, so start the connections over.
            self._close_remotes()
            self._remote_key = (chunk, provider)
        hello = self._hello(chunk, provider)
        live: dict[str, RemoteWorker] = {}
        for address in self.workers:
            worker = self._remote_registry.get(address)
            if worker is None:
                worker = RemoteWorker(address, timeout=self.worker_timeout)
                self._remote_registry[address] = worker
            if worker.connected:
                try:
                    # Array keys are per-run indices: clear the daemon's
                    # uploads so this run's keys cannot alias last run's.
                    worker.reset_arrays()
                    live[address] = worker
                    continue
                except ConnectionError:
                    pass  # died between runs: fall through and reconnect
            try:
                worker.connect(hello)
            except ConnectionError as exc:
                if address not in self._remote_ever:
                    raise ConfigurationError(
                        f"fleet worker {address} is unreachable: {exc}"
                    ) from exc
                continue  # previously healthy: run degraded this time
            self._remote_ever.add(address)
            live[address] = worker
        self._remotes = live
        return live

    def _run_scheduled(
        self,
        arrays: list[np.ndarray],
        tasks: list[_WireTask],
        chunk: int,
        provider: str,
    ) -> tuple[list[list[tuple]], int]:
        """Dispatch wire tasks across local slots and remote daemons.

        Work-stealing over a :class:`_TaskBoard`: every executor thread
        claims tasks until none remain.  Remote death requeues the
        claimed task — results merge in task-id order and every kernel
        is batch-composition-independent, so re-running a task on a
        different slot cannot change the merged output — while
        deterministic failures abort the whole run.  The local slots
        never retire, so the board always drains even if every remote
        worker dies mid-run.

        Returns the packed spectra in task order plus the number of
        remote workers that participated.
        """
        remotes = self._ensure_remotes(chunk, provider)
        board = _TaskBoard(len(tasks))
        threads: list[threading.Thread] = []
        with ExitStack() as stack:
            if self.n_jobs > 1:
                pool = self._ensure_pool(chunk, provider)
                store = stack.enter_context(SharedRecordingStore())
                refs = [store.put(array) for array in arrays]
                for slot in range(self.n_jobs):
                    threads.append(
                        threading.Thread(
                            target=self._pool_slot_loop,
                            args=(board, pool, refs, tasks),
                            name=f"fleet-pool-slot-{slot}",
                            daemon=True,
                        )
                    )
            else:
                threads.append(
                    threading.Thread(
                        target=self._inprocess_loop,
                        args=(board, arrays, tasks, chunk, provider),
                        name="fleet-local",
                        daemon=True,
                    )
                )
            hello = self._hello(chunk, provider)
            for address, worker in remotes.items():
                threads.append(
                    threading.Thread(
                        target=self._remote_loop,
                        args=(board, worker, arrays, tasks, hello),
                        name=f"fleet-remote-{address}",
                        daemon=True,
                    )
                )
            for thread in threads:
                thread.start()
            board.wait()
            for thread in threads:
                thread.join()
        failure = board.failure
        if failure is not None:
            raise failure
        return board.results_in_order(), len(remotes)

    def _pool_slot_loop(self, board, pool, refs, tasks) -> None:
        """One local pool slot: claim a task, run it via the worker pool."""
        while True:
            task_id = board.claim()
            if task_id is None:
                return
            task = tasks[task_id]
            pool_task = SpanBatchTask(
                batch_id=task.task_id,
                times_ref=refs[task.times_key],
                values_ref=refs[task.values_key],
                spans=task.spans,
                count_ops=task.count_ops,
                variant=task.variant,
                corrected_ref=(
                    None
                    if task.corrected_key is None
                    else refs[task.corrected_key]
                ),
            )
            try:
                handle = pool.apply_async(run_span_batch, (pool_task,))
                while True:
                    if board.failure is not None:
                        return  # run is already lost: stop polling
                    try:
                        _batch_id, packed = handle.get(
                            timeout=_POOL_POLL_SECONDS
                        )
                        break
                    except multiprocessing.TimeoutError:
                        self._raise_if_pool_worker_died()
            except BaseException as exc:
                # Pool worker death or a deterministic task failure:
                # either way the local pool can no longer be trusted
                # with this run's queued siblings.
                self._discard_pool()
                board.abort(exc)
                return
            board.complete(task_id, packed)

    def _inprocess_loop(self, board, arrays, tasks, chunk, provider) -> None:
        """The ``n_jobs == 1`` local slot: run claimed tasks right here."""
        try:
            with pinned_execution(provider, chunk):
                while True:
                    task_id = board.claim()
                    if task_id is None:
                        return
                    task = tasks[task_id]
                    spectra, metrics = analyze_spans_quality(
                        self._variant_welch(task.variant).analyzer,
                        arrays[task.times_key],
                        arrays[task.values_key],
                        task.spans,
                        task.count_ops,
                        corrected=(
                            None
                            if task.corrected_key is None
                            else arrays[task.corrected_key]
                        ),
                    )
                    board.complete(
                        task_id,
                        (pack_spectra(spectra), pack_metrics(metrics)),
                    )
        except BaseException as exc:
            board.abort(exc)

    def _remote_loop(self, board, worker, arrays, tasks, hello) -> None:
        """One remote slot: ship claimed tasks; rejoin if the worker dies.

        A :class:`ConnectionError` requeues the claimed task
        immediately (a local slot guarantees the board drains even if
        this worker never comes back), then tries to *rejoin*:
        :meth:`RemoteWorker.reconnect` re-dials with bounded backoff,
        :meth:`RemoteWorker.reset_arrays` confirms the new session with
        a ping/pong, and the slot resumes claiming — its array uploads
        rebuild lazily on first reference.  If the rejoin fails the
        slot retires for this run and the next run reconnects.
        """
        claimed: int | None = None
        while True:
            try:
                while True:
                    claimed = board.claim()
                    if claimed is None:
                        return
                    task = tasks[claimed]
                    worker.ensure_array(
                        task.times_key, arrays[task.times_key]
                    )
                    worker.ensure_array(
                        task.values_key, arrays[task.values_key]
                    )
                    if task.corrected_key is not None:
                        worker.ensure_array(
                            task.corrected_key, arrays[task.corrected_key]
                        )
                    packed = worker.run_task(
                        task.task_id,
                        task.times_key,
                        task.values_key,
                        task.spans,
                        task.count_ops,
                        variant=task.variant,
                        corrected_key=task.corrected_key,
                    )
                    board.complete(claimed, packed)
                    claimed = None
            except ConnectionError:
                if claimed is not None:
                    board.requeue(claimed)
                    claimed = None
                if board.failure is not None:
                    return  # run already lost: no point rejoining
                try:
                    worker.reconnect(hello)
                    worker.reset_arrays()
                except (ConnectionError, ConfigurationError):
                    return  # rejoin failed: retire for this run
            except BaseException as exc:
                # RemoteTaskError and friends are deterministic — the
                # task would fail identically on any slot, so abort the
                # run instead of bouncing it between workers.
                board.abort(exc)
                return

    def _merge(
        self,
        plans: list[RecordingWindows],
        shards,
        packed: list[tuple],
        count_ops: bool,
    ) -> list[WelchLombResult]:
        """Reassemble per-shard spectra into per-recording results.

        Shards are emitted grouped by recording and ordered by ``lo``
        (:func:`plan_shards`), so concatenating in dispatch order
        restores every recording's window order (spectra and metrics
        alike); the final assembly is the exact single-process back end.
        """
        spectra_per_recording: list[list] = [[] for _ in plans]
        metrics_per_recording: list[list] = [[] for _ in plans]
        for shard, (shard_packed, shard_metrics) in zip(shards, packed):
            spectra_per_recording[shard.recording].extend(
                unpack_spectra(shard_packed)
            )
            metrics_per_recording[shard.recording].extend(
                unpack_metrics(shard_metrics)
            )
        return [
            assemble_result(
                spectra, plan.centers, plan.skipped, count_ops,
                metrics=metrics,
            )
            for spectra, metrics, plan in zip(
                spectra_per_recording, metrics_per_recording, plans
            )
        ]
