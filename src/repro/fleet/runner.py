"""Fleet-scale sharded execution of the windowed-PSA engine.

:class:`FleetRunner` runs many recordings — or the window shards of one
huge recording — across a pool of worker processes, each driving the
same batched :meth:`FastLomb.periodogram_batch` pipeline the
single-process path uses:

1. the parent validates every recording and lays out its windows
   (:meth:`WelchLomb.plan_windows`), then shards the kept windows into
   contiguous ranges (:mod:`repro.fleet.sharding`);
2. recording arrays go into POSIX shared memory once
   (:mod:`repro.fleet.shm`); workers slice windows out of the mapped
   blocks zero-copy, so the task queue carries only index ranges;
3. the parent warms every execution-time plan cache **before** the pool
   forks, so workers inherit twiddle tables, pruning masks and whole
   kernel plans copy-on-write instead of rebuilding them per worker;
4. per-shard spectra are reassembled in window order and fed through
   the same :func:`~repro.lomb.welch.assemble_result` back end as the
   single-process path, making the merged spectrograms, Welch averages
   and operation counts identical to it by construction (bit-exact:
   every per-window quantity is computed by composition-independent
   kernels).

``n_jobs=1`` runs the identical shard/merge pipeline in-process — no
pool, no shared memory — which keeps the merge machinery exercised by
fast tests.  With ``n_jobs > 1`` the worker pool is **persistent**:
repeated :meth:`FleetRunner.run` calls (the serving pattern) reuse it,
paying the fork/initialise cost once; call :meth:`FleetRunner.close`
(or use the runner as a context manager) when done.
"""

from __future__ import annotations

import multiprocessing
import os
import weakref
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, SignalError
from ..hrv.rr import RRSeries
from ..lomb.fast import get_batch_chunk_windows, pinned_execution
from ..lomb.welch import (
    RecordingWindows,
    WelchLomb,
    WelchLombResult,
    analyze_spans,
    assemble_result,
)
from ..ffts.plancache import warm_execution_caches
from ..ffts.providers.registry import resolve_provider_name
from .sharding import (
    DEFAULT_MIN_WINDOWS_PER_SHARD,
    DEFAULT_OVERSUBSCRIPTION,
    plan_shards,
)
from .shm import SharedRecordingStore
from .worker import (
    ShardTask,
    SpanBatchTask,
    init_worker,
    pack_spectra,
    run_shard,
    run_span_batch,
    unpack_spectra,
)

__all__ = ["FleetReport", "FleetRunner"]

#: Fewest windows a :meth:`FleetRunner.run_spans` pool slice may carry —
#: below this, splitting a span batch across more workers costs more in
#: task dispatch than the extra parallelism recovers.
MIN_SPANS_PER_SLICE = 8


def _terminate_abandoned_pool(pool) -> None:
    """`weakref.finalize` safety net for unreleased worker pools.

    A :class:`FleetRunner` (or the :class:`~repro.engine.Engine` that
    owns one) abandoned without :meth:`FleetRunner.close` must not
    strand live worker processes — at garbage collection, and at
    interpreter exit at the latest (``weakref.finalize`` registers
    atexit), the pool is torn down hard.
    """
    pool.terminate()
    pool.join()


@dataclass(frozen=True)
class FleetReport:
    """A fleet run's results plus its execution geometry.

    Attributes
    ----------
    results:
        One :class:`WelchLombResult` per input recording, in order.
    n_jobs:
        Worker processes used (1 means the in-process path ran).
    n_shards:
        Window shards the cohort was split into.
    chunk_windows:
        Batch sub-batch size every process ran with.
    start_method:
        Multiprocessing start method (``None`` for the in-process path).
    provider:
        Resolved FFT execution provider every process was pinned to.
    """

    results: tuple[WelchLombResult, ...]
    n_jobs: int
    n_shards: int
    chunk_windows: int
    start_method: str | None
    provider: str | None = None


class FleetRunner:
    """Multiprocess cohort runner over the batched Welch-Lomb engine.

    Parameters
    ----------
    welch:
        The windowed engine to replicate into every worker; defaults to
        a paper-standard :class:`WelchLomb` (2-minute windows, 50 %
        overlap, denormalized scaling).
    n_jobs:
        Worker processes; ``None`` means one per available CPU.
    start_method:
        ``multiprocessing`` start method; ``None`` prefers ``fork``
        (copy-on-write plan-cache inheritance) where available.
    min_windows_per_shard, oversubscription:
        Shard-granularity knobs, see :func:`repro.fleet.sharding.plan_shards`.
    chunk_windows:
        Batch sub-batch size to pin across the fleet; ``None`` resolves
        the host-tuned value (:func:`repro.lomb.fast.get_batch_chunk_windows`).
    provider:
        FFT execution provider to pin across the fleet; ``None``
        resolves the registry chain
        (:func:`repro.ffts.providers.registry.resolve_provider_name`)
        **once in the parent** — the resolved name is installed in
        every worker so all shards round identically, which is what
        keeps sharded results bit-identical to single-process ones
        under every provider.
    arena:
        Install a per-process :class:`~repro.perf.WorkspaceArena` in
        every worker (pre-warmed with the fleet's hot kernel shapes) so
        steady-state shards reuse buffers instead of reallocating them;
        never affects results.
    """

    def __init__(
        self,
        welch: WelchLomb | None = None,
        n_jobs: int | None = None,
        start_method: str | None = None,
        min_windows_per_shard: int = DEFAULT_MIN_WINDOWS_PER_SHARD,
        oversubscription: int = DEFAULT_OVERSUBSCRIPTION,
        chunk_windows: int | None = None,
        provider: str | None = None,
        arena: bool = True,
    ):
        self.welch = welch if welch is not None else WelchLomb()
        if n_jobs is None:
            n_jobs = os.cpu_count() or 1
        if n_jobs < 1:
            raise ConfigurationError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.min_windows_per_shard = int(min_windows_per_shard)
        self.oversubscription = int(oversubscription)
        self._chunk_windows = chunk_windows
        self._provider = provider
        self._arena = bool(arena)
        self._pool = None
        self._pool_key: tuple[int, str] | None = None
        self._pool_finalizer: weakref.finalize | None = None

    @classmethod
    def from_config(cls, config, welch: WelchLomb | None = None, **kwargs):
        """Runner matching one :class:`~repro.engine.EngineConfig`.

        Execution settings (jobs, chunk size, provider) are resolved
        through the config's documented precedence chain; ``welch``
        defaults to the engine the config's system kind and geometry
        describe.  The engine facade
        (:meth:`repro.engine.Engine.analyze_cohort`) is the usual owner
        of a runner built this way — it keeps the pool persistent
        across cohort calls.
        """
        if welch is None:
            from ..engine.engine import build_system

            welch = build_system(config).welch
        resolved = config.resolve()
        return cls(
            welch=welch,
            n_jobs=resolved.jobs,
            chunk_windows=resolved.chunk_windows,
            provider=resolved.provider,
            arena=getattr(config, "arena", True),
            **kwargs,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(recording) -> tuple[np.ndarray, np.ndarray]:
        """Accept an :class:`RRSeries` or a ``(times, values)`` pair."""
        if isinstance(recording, RRSeries):
            return recording.times, recording.intervals
        try:
            times, values = recording
        except (TypeError, ValueError):
            raise SignalError(
                "recordings must be RRSeries or (times, values) pairs"
            ) from None
        return times, values

    def run(self, recordings, count_ops: bool = False) -> list[WelchLombResult]:
        """Analyse a cohort; one :class:`WelchLombResult` per recording."""
        return list(self.run_report(recordings, count_ops=count_ops).results)

    def run_report(self, recordings, count_ops: bool = False) -> FleetReport:
        """:meth:`run` plus the execution geometry (shards, jobs, chunk)."""
        pairs = [self._coerce(recording) for recording in recordings]
        if not pairs:
            raise SignalError("cohort is empty: nothing to analyse")
        plans = [self.welch.plan_windows(t, x) for t, x in pairs]
        for plan in plans:
            if not plan.spans:
                raise SignalError(
                    "no analysable windows: recording too short or too sparse"
                )
        shards = plan_shards(
            [plan.n_windows for plan in plans],
            self.n_jobs,
            min_windows_per_shard=self.min_windows_per_shard,
            oversubscription=self.oversubscription,
        )
        chunk, provider = self._resolve_execution()
        if self.n_jobs == 1:
            packed = self._run_in_process(
                plans, shards, count_ops, chunk, provider
            )
            n_jobs, used_method = 1, None
        else:
            packed = self._run_pool(plans, shards, count_ops, chunk, provider)
            n_jobs, used_method = self.n_jobs, self.start_method
        results = self._merge(plans, shards, packed, count_ops)
        return FleetReport(
            results=tuple(results),
            n_jobs=n_jobs,
            n_shards=len(shards),
            chunk_windows=chunk,
            start_method=used_method,
            provider=provider,
        )

    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent)."""
        self._detach_finalizer()
        pool, self._pool = self._pool, None
        self._pool_key = None
        if pool is not None:
            pool.close()
            pool.join()

    def _detach_finalizer(self) -> None:
        finalizer, self._pool_finalizer = self._pool_finalizer, None
        if finalizer is not None:
            finalizer.detach()

    def _discard_pool(self) -> None:
        """Tear the live pool down hard and forget every handle to it.

        The failure path: queued sibling tasks must not keep running
        against unlinked shared memory, and both ``_pool`` *and*
        ``_pool_key`` must be cleared together — a stale key paired
        with a fresh pool would claim the wrong execution settings.
        """
        self._detach_finalizer()
        pool, self._pool = self._pool, None
        self._pool_key = None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "FleetRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _resolve_execution(self) -> tuple[int, str]:
        """Resolve the (chunk, provider) pair one run executes under.

        Shared by every entry point (:meth:`run_report`,
        :meth:`run_spans`): the provider is resolved once, in the
        parent, so every process — including this one on the
        in-process paths — runs the same engine (results are
        provider-dependent at the ulp level; one fleet must round one
        way).
        """
        workspace = self.welch.analyzer.workspace_size
        chunk = (
            self._chunk_windows
            if self._chunk_windows is not None
            else get_batch_chunk_windows(workspace)
        )
        return chunk, resolve_provider_name(self._provider, workspace)

    def _run_in_process(
        self,
        plans: list[RecordingWindows],
        shards,
        count_ops: bool,
        chunk: int,
        provider: str,
    ) -> list[list[tuple]]:
        """Single-process execution of the identical shard pipeline."""
        with pinned_execution(provider, chunk):
            packed: list[list[tuple]] = []
            for shard in shards:
                plan = plans[shard.recording]
                spectra = analyze_spans(
                    self.welch.analyzer,
                    plan.times,
                    plan.values,
                    plan.spans[shard.lo : shard.hi],
                    count_ops,
                )
                packed.append(pack_spectra(spectra))
            return packed

    def _ensure_pool(self, chunk: int, provider: str):
        """Create (or reuse) the persistent worker pool.

        The pool outlives individual :meth:`run` calls so repeated
        cohort runs — the serving pattern — pay the fork/initialise
        cost once.  Pre-fork warm-up happens right before creation:
        with the fork start method the workers inherit every plan-cache
        table — including the resolved provider's per-size execution
        state — copy-on-write, so nothing is re-derived N-workers
        times.  (Plan objects themselves were built when the engine was
        constructed.)
        """
        if self._pool is not None and self._pool_key == (chunk, provider):
            return self._pool
        self.close()
        analyzer = self.welch.analyzer
        warm_execution_caches(analyzer.workspace_size, analyzer.order, provider)
        ctx = multiprocessing.get_context(self.start_method)
        self._pool = ctx.Pool(
            processes=self.n_jobs,
            initializer=init_worker,
            initargs=(self.welch, chunk, provider, self._arena),
        )
        self._pool_key = (chunk, provider)
        # Safety net for abandoned runners: if this runner is garbage
        # collected (or the interpreter exits) with the pool still
        # live, tear it down rather than strand the workers.  close()
        # detaches this, so an orderly release never terminates.
        self._pool_finalizer = weakref.finalize(
            self, _terminate_abandoned_pool, self._pool
        )
        return self._pool

    def _run_pool(
        self,
        plans: list[RecordingWindows],
        shards,
        count_ops: bool,
        chunk: int,
        provider: str,
    ) -> list[list[tuple]]:
        """Dispatch shards over the worker pool, shared-memory backed."""
        pool = self._ensure_pool(chunk, provider)
        collected: list[list[tuple] | None] = [None] * len(shards)
        with SharedRecordingStore() as store:
            refs = [
                (store.put(plan.times), store.put(plan.values))
                for plan in plans
            ]
            tasks = [
                ShardTask(
                    shard_id=shard_id,
                    recording=shard.recording,
                    times_ref=refs[shard.recording][0],
                    values_ref=refs[shard.recording][1],
                    spans=plans[shard.recording].spans[shard.lo : shard.hi],
                    count_ops=count_ops,
                )
                for shard_id, shard in enumerate(shards)
            ]
            try:
                for shard_id, packed in pool.imap_unordered(run_shard, tasks):
                    collected[shard_id] = packed
            except BaseException:
                # A failed shard leaves queued siblings behind; tear the
                # pool down rather than let them run against unlinked
                # shared memory.
                self._discard_pool()
                raise
        return collected  # every slot filled: imap yields one per task

    def run_spans(
        self, times, values, spans, count_ops: bool = False
    ) -> list:
        """Analyse one flat span batch, dispatching over the pool.

        The streaming hub's execution path: ``times``/``values`` are one
        validated sample array pair — typically many subjects' completed
        windows concatenated back to back — and ``spans`` are its
        ``[start, stop)`` window ranges.  With ``n_jobs > 1`` the spans
        are split into contiguous slices over the **persistent** worker
        pool (created on first use, shared with :meth:`run`), the
        arrays travel once through the shm transport, and the spectra
        come back in span order; ``n_jobs == 1`` (or a batch too small
        to split) runs in-process.  Either way the result is
        bit-identical to a single in-process
        :func:`~repro.lomb.welch.analyze_spans` call: every kernel is
        batch-composition-independent and every process is pinned to
        the same provider and chunk size.
        """
        spans = tuple(spans)
        if not spans:
            return []
        chunk, provider = self._resolve_execution()
        n_slices = max(
            1, min(self.n_jobs, len(spans) // MIN_SPANS_PER_SLICE)
        )
        if n_slices == 1:
            # n_jobs == 1, or a batch too small to split: a single
            # pool slice would pay shm setup + IPC per flush for work
            # the (identically pinned, hence bit-identical) in-process
            # call does cheaper.
            with pinned_execution(provider, chunk):
                return analyze_spans(
                    self.welch.analyzer, times, values, spans, count_ops
                )
        pool = self._ensure_pool(chunk, provider)
        bounds = [len(spans) * i // n_slices for i in range(n_slices + 1)]
        collected: list[list[tuple] | None] = [None] * n_slices
        with SharedRecordingStore() as store:
            times_ref = store.put(times)
            values_ref = store.put(values)
            tasks = [
                SpanBatchTask(
                    batch_id=batch_id,
                    times_ref=times_ref,
                    values_ref=values_ref,
                    spans=spans[lo:hi],
                    count_ops=count_ops,
                )
                for batch_id, (lo, hi) in enumerate(
                    zip(bounds[:-1], bounds[1:])
                )
            ]
            try:
                for batch_id, packed in pool.imap_unordered(
                    run_span_batch, tasks
                ):
                    collected[batch_id] = packed
            except BaseException:
                self._discard_pool()
                raise
        return [
            spectrum
            for packed in collected
            for spectrum in unpack_spectra(packed)
        ]

    def _merge(
        self,
        plans: list[RecordingWindows],
        shards,
        packed: list[list[tuple]],
        count_ops: bool,
    ) -> list[WelchLombResult]:
        """Reassemble per-shard spectra into per-recording results.

        Shards are emitted grouped by recording and ordered by ``lo``
        (:func:`plan_shards`), so concatenating in dispatch order
        restores every recording's window order; the final assembly is
        the exact single-process back end.
        """
        spectra_per_recording: list[list] = [[] for _ in plans]
        for shard, shard_packed in zip(shards, packed):
            spectra_per_recording[shard.recording].extend(
                unpack_spectra(shard_packed)
            )
        return [
            assemble_result(spectra, plan.centers, plan.skipped, count_ops)
            for spectra, plan in zip(spectra_per_recording, plans)
        ]
