"""Shared-memory transport for cohort RR arrays.

The fleet engine distributes *window index ranges*, not window data:
each recording's ``times`` / ``values`` arrays are written once into
POSIX shared memory by the parent, and every worker slices its shard's
windows directly out of the mapped block — zero copies per window and
no pickling of per-window tuples through the task queue.

Ownership is strictly parent-side: :class:`SharedRecordingStore`
creates and unlinks every block; workers only attach read-only views
via :func:`attach_array` and deliberately unregister the attachment
from their ``resource_tracker`` so a worker exiting does not tear the
block down under its siblings (CPython < 3.13 tracks attachments the
same as creations; see python/cpython#82300).
"""

from __future__ import annotations

import inspect
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from .._validation import as_1d_float_array

__all__ = ["SharedArrayRef", "SharedRecordingStore", "attach_array"]

#: Whether ``SharedMemory(..., track=False)`` exists (Python >= 3.13),
#: probed once at import so the attach hot path never pays for the
#: signature inspection or a try/except TypeError round trip.
_TRACK_SUPPORTED = "track" in inspect.signature(
    shared_memory.SharedMemory.__init__
).parameters

#: Serialises the pre-3.13 fallback below.  It swaps
#: ``resource_tracker.register`` for a no-op **process-globally**;
#: without the lock, two threads attaching concurrently (exactly what a
#: multiplexed stream hub does) can each capture the other's no-op as
#: the "original" and leave the tracker permanently disabled — or
#: re-enable it mid-attach and register a sibling's block for teardown.
_ATTACH_LOCK = threading.Lock()


@dataclass(frozen=True)
class SharedArrayRef:
    """Picklable handle to one float64 array in shared memory.

    Attributes
    ----------
    name:
        POSIX shared-memory block name.
    length:
        Number of float64 elements in the block.
    """

    name: str
    length: int


class SharedRecordingStore:
    """Parent-side owner of a cohort's shared-memory arrays.

    Use as a context manager around the worker pool's lifetime::

        with SharedRecordingStore() as store:
            ref = store.put(times)
            ... dispatch tasks carrying ``ref`` ...

    ``close()`` (or context exit) unlinks every block; workers must be
    done by then.
    """

    def __init__(self):
        self._blocks: list[shared_memory.SharedMemory] = []

    def put(self, array) -> SharedArrayRef:
        """Copy a 1-D float array into a new shared-memory block."""
        arr = as_1d_float_array(array, "array", min_length=1)
        block = shared_memory.SharedMemory(create=True, size=arr.nbytes)
        view = np.ndarray(arr.shape, dtype=np.float64, buffer=block.buf)
        view[:] = arr
        self._blocks.append(block)
        return SharedArrayRef(name=block.name, length=arr.size)

    def close(self) -> None:
        """Unlink every block this store created."""
        blocks, self._blocks = self._blocks, []
        for block in blocks:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedRecordingStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach_array(
    ref: SharedArrayRef,
) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach to a block and view it as a float64 array (worker side).

    Returns ``(block, array)``; the caller must keep *block* referenced
    for as long as the array (or any window sliced from it) is in use.
    The attachment is unregistered from this process's resource tracker
    because the parent store owns the block's lifetime.
    """
    if _TRACK_SUPPORTED:
        block = shared_memory.SharedMemory(name=ref.name, track=False)
    else:
        # Python < 3.13 has no ``track`` parameter and unconditionally
        # registers attachments; registering here would unbalance the
        # (fork-shared) tracker's books against the parent's unlink.
        # Suppress registration for the duration of the attach instead —
        # under the module lock, because the swap is process-global.
        with _ATTACH_LOCK:
            original_register = resource_tracker.register
            resource_tracker.register = lambda name, rtype: None
            try:
                block = shared_memory.SharedMemory(name=ref.name)
            finally:
                resource_tracker.register = original_register
    array = np.ndarray((ref.length,), dtype=np.float64, buffer=block.buf)
    array.setflags(write=False)
    return block, array
