"""Test-support utilities shipped with the library.

Currently one module: :mod:`repro.testing.faults`, the deterministic
fault-injection harness the chaos suite and ``tools/chaos_smoke.py``
drive the streaming engine with.  Everything here is import-safe in
production code paths (nothing monkeypatches at import time) but is
*meant* for tests: the hooks it attaches trade realism for
reproducibility on purpose.
"""

from .faults import (
    FaultClock,
    FlakyFrameStream,
    FlushLatencyFault,
    SlowFrameStream,
    WorkerDeathTrigger,
)

__all__ = [
    "FaultClock",
    "FlakyFrameStream",
    "FlushLatencyFault",
    "SlowFrameStream",
    "WorkerDeathTrigger",
]
