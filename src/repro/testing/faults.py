"""Deterministic fault injection for the streaming/fleet engine.

Chaos tests need *controlled* disorder: overload that arrives on
schedule, workers that die on the exact task the test names, clocks
that skew by a chosen rate — and the same disorder on every run, or a
failing chaos test cannot be debugged.  This module provides that
disorder as small, seedable components that attach to the engine's
injection points:

* :class:`FaultClock` — a manual clock (with optional skew rate)
  installed as ``hub._clock``, so flush-latency observations are
  script-driven instead of wall-driven.
* :class:`FlushLatencyFault` — a cost model installed as
  ``hub._flush_latency_fault``: each flush's *observed* latency grows
  with the number of windows analysed, discounted per degradation
  level, times a scheduled load multiplier.  Injected latency is added
  to the observation, never slept, so a chaos run steering the
  :class:`~repro.engine.controller.QualityController` through overload
  and recovery completes in milliseconds.
* :class:`SlowFrameStream` / :class:`FlakyFrameStream` — transport
  wrappers around :class:`~repro.fleet.transport.FrameStream` that
  delay or kill the connection deterministically (by message count, by
  message kind, or by a seeded drop rate).
* :class:`WorkerDeathTrigger` — arms a
  :class:`~repro.fleet.remote.RemoteWorker` to "die" (connection
  dropped, :class:`ConnectionError` raised) after a chosen number of
  tasks, exercising the scheduler's requeue + rejoin path against a
  daemon that is in fact still healthy.

Nothing here patches anything at import time; every component attaches
explicitly and can be detached (:meth:`WorkerDeathTrigger.cancel`,
``FaultClock.uninstall``).
"""

from __future__ import annotations

import random

from ..errors import ConfigurationError

__all__ = [
    "FaultClock",
    "FlakyFrameStream",
    "FlushLatencyFault",
    "SlowFrameStream",
    "WorkerDeathTrigger",
]


class FaultClock:
    """A manual, skewable clock; callable like ``time.perf_counter``.

    The clock only moves when told (:meth:`advance`) or, with
    ``tick > 0``, by a fixed amount per reading — both scaled by
    ``rate``, the skew factor (``rate=2.0`` is a clock running twice
    real speed; ``0.5`` half speed).  Install it on a hub to make the
    controller's latency window entirely script-driven::

        clock = FaultClock().install(hub)
        hub.flush()           # observes 0 latency (clock never moved)
        clock.advance(0.120)  # next flush that spans this sees 120 ms

    Parameters
    ----------
    start:
        Initial reading, seconds.
    tick:
        Seconds (pre-skew) auto-advanced on *every* reading — a cheap
        way to give each flush a nonzero duration without scripting
        every advance.
    rate:
        Skew factor applied to both ``tick`` and :meth:`advance`.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0,
                 rate: float = 1.0):
        if float(rate) <= 0.0:
            raise ConfigurationError(
                f"clock skew rate must be > 0, got {rate!r}"
            )
        if float(tick) < 0.0:
            raise ConfigurationError(
                f"clock tick must be >= 0, got {tick!r}"
            )
        self.now = float(start)
        self.tick = float(tick)
        self.rate = float(rate)
        self.readings = 0
        self._installed: list = []

    def __call__(self) -> float:
        value = self.now
        self.readings += 1
        if self.tick:
            self.now += self.tick * self.rate
        return value

    def advance(self, seconds: float) -> "FaultClock":
        """Move the clock forward by ``seconds * rate``."""
        if float(seconds) < 0.0:
            raise ConfigurationError(
                f"cannot advance a clock backwards ({seconds!r})"
            )
        self.now += float(seconds) * self.rate
        return self

    def install(self, hub) -> "FaultClock":
        """Make ``hub`` (a :class:`StreamHub`) read time from this clock."""
        self._installed.append((hub, hub._clock))
        hub._clock = self
        return self

    def uninstall(self) -> None:
        """Restore every installed hub's original clock."""
        while self._installed:
            hub, original = self._installed.pop()
            hub._clock = original


class FlushLatencyFault:
    """Modelled flush latency, installed as ``hub._flush_latency_fault``.

    The hook returns *extra seconds added to the flush's observed
    latency* (the hub never sleeps them).  The model::

        extra = load[i] * sum(windows_at_level * per_window_ms
                              * discount ** level) / 1000

    where ``i`` is the flush index (the last ``load`` entry holds
    forever, so a schedule like ``(8, 8, 8, 1)`` is a three-flush
    overload burst followed by calm) and ``discount ** level`` is the
    per-level cost reduction — degraded windows are modelled cheaper,
    which is precisely what makes controller step-downs *visibly* pull
    the observed p95 back under target in a chaos run.

    Parameters
    ----------
    per_window_ms:
        Modelled analysis cost of one full-quality window.
    discount:
        Multiplicative cost factor per degradation level, in ``(0, 1]``.
    load:
        Per-flush load multipliers; empty means a constant 1.0.
    """

    def __init__(self, per_window_ms: float = 2.0, discount: float = 0.5,
                 load=()):
        if float(per_window_ms) < 0.0:
            raise ConfigurationError(
                f"per_window_ms must be >= 0, got {per_window_ms!r}"
            )
        if not 0.0 < float(discount) <= 1.0:
            raise ConfigurationError(
                f"discount must be in (0, 1], got {discount!r}"
            )
        self.per_window_ms = float(per_window_ms)
        self.discount = float(discount)
        self.load = tuple(float(x) for x in load)
        for x in self.load:
            if x < 0.0:
                raise ConfigurationError(
                    f"load multipliers must be >= 0, got {x!r}"
                )
        self.calls = 0
        #: Injected extra seconds, one entry per flush observed.
        self.history: list[float] = []

    def multiplier(self, call_index: int) -> float:
        """The load multiplier in force for the given flush index."""
        if not self.load:
            return 1.0
        return self.load[min(call_index, len(self.load) - 1)]

    def install(self, hub) -> "FlushLatencyFault":
        """Attach to ``hub`` (replacing any previous latency fault)."""
        hub._flush_latency_fault = self
        return self

    def __call__(self, hub, backlog: int, elapsed: float) -> float:
        cost_ms = 0.0
        for level, windows in getattr(hub, "last_flush_levels", {}).items():
            cost_ms += (
                windows * self.per_window_ms * self.discount ** int(level)
            )
        extra = self.multiplier(self.calls) * cost_ms / 1000.0
        self.calls += 1
        self.history.append(extra)
        return extra


class SlowFrameStream:
    """A :class:`FrameStream` proxy that delays sends and receives.

    ``sleep`` is injectable (default: no-op, purely counting) so a test
    can model slowness against a :class:`FaultClock` without ever
    stalling the suite; pass ``time.sleep`` for real wall delays.
    """

    def __init__(self, inner, send_delay: float = 0.0,
                 recv_delay: float = 0.0, sleep=None):
        self._inner = inner
        self.send_delay = float(send_delay)
        self.recv_delay = float(recv_delay)
        self._sleep = sleep if sleep is not None else (lambda _s: None)
        self.delayed = 0

    def send(self, kind: str, payload: dict | None = None) -> None:
        if self.send_delay:
            self.delayed += 1
            self._sleep(self.send_delay)
        return self._inner.send(kind, payload)

    def recv(self):
        if self.recv_delay:
            self.delayed += 1
            self._sleep(self.recv_delay)
        return self._inner.recv()

    def __getattr__(self, name):
        return getattr(self._inner, name)


class FlakyFrameStream:
    """A :class:`FrameStream` proxy that kills the connection on cue.

    Three independent, deterministic triggers — whichever fires first
    closes the underlying socket and raises :class:`ConnectionError`
    (exactly what a peer vanishing mid-frame produces):

    * ``fail_after_sends`` / ``fail_after_recvs`` — die on the Nth
      send/receive (1-based; ``None`` disables).
    * ``fail_kinds`` — die when *sending* a message of a named kind
      (e.g. ``("task",)`` kills the first task dispatch, leaving the
      handshake and array uploads intact).
    * ``drop_rate`` with ``seed`` — die on each send with the given
      probability from a private :class:`random.Random`, so "random"
      loss replays identically per seed.
    """

    def __init__(self, inner, fail_after_sends: int | None = None,
                 fail_after_recvs: int | None = None, fail_kinds=(),
                 drop_rate: float = 0.0, seed: int = 0):
        if not 0.0 <= float(drop_rate) <= 1.0:
            raise ConfigurationError(
                f"drop_rate must be in [0, 1], got {drop_rate!r}"
            )
        self._inner = inner
        self.fail_after_sends = fail_after_sends
        self.fail_after_recvs = fail_after_recvs
        self.fail_kinds = frozenset(fail_kinds)
        self.drop_rate = float(drop_rate)
        self._rng = random.Random(seed)
        self.sends = 0
        self.recvs = 0
        self.failures = 0

    def _die(self, why: str) -> None:
        self.failures += 1
        self._inner.close()
        raise ConnectionError(f"injected fault: {why}")

    def send(self, kind: str, payload: dict | None = None) -> None:
        self.sends += 1
        if kind in self.fail_kinds:
            self._die(f"connection dropped sending {kind!r}")
        if (self.fail_after_sends is not None
                and self.sends >= self.fail_after_sends):
            self._die(f"connection dropped on send #{self.sends}")
        if self.drop_rate and self._rng.random() < self.drop_rate:
            self._die("connection dropped (seeded loss)")
        return self._inner.send(kind, payload)

    def recv(self):
        self.recvs += 1
        if (self.fail_after_recvs is not None
                and self.recvs >= self.fail_after_recvs):
            self._die(f"connection dropped on recv #{self.recvs}")
        return self._inner.recv()

    def __getattr__(self, name):
        return getattr(self._inner, name)


class WorkerDeathTrigger:
    """Arms a :class:`RemoteWorker` to die after N more tasks.

    Wraps the worker's ``run_task``: once the armed count is spent, the
    next task call drops the live connection (via the worker's own
    ``_drop``, so its state matches a real peer death) and raises
    :class:`ConnectionError` — from the scheduler's seat this is
    indistinguishable from the daemon's machine rebooting, except the
    daemon is still there to accept the rejoin.  One-shot per
    :meth:`arm`; re-arm for repeated deaths, :meth:`cancel` to restore
    the original method.
    """

    def __init__(self, worker, after_tasks: int = 0):
        self._worker = worker
        self._original = worker.run_task
        self._armed: int | None = None
        self.tasks_passed = 0
        self.deaths = 0
        worker.run_task = self._run_task
        self.arm(after_tasks)

    def arm(self, after_tasks: int) -> "WorkerDeathTrigger":
        """Die after ``after_tasks`` more successful task dispatches."""
        if int(after_tasks) < 0:
            raise ConfigurationError(
                f"after_tasks must be >= 0, got {after_tasks!r}"
            )
        self._armed = int(after_tasks)
        return self

    def disarm(self) -> None:
        """Stop injecting (the wrapper stays attached but passes through)."""
        self._armed = None

    def cancel(self) -> None:
        """Detach entirely, restoring the worker's original ``run_task``."""
        self._worker.run_task = self._original
        self._armed = None

    def _run_task(self, *args, **kwargs):
        if self._armed is not None and self._armed == 0:
            self._armed = None  # one-shot: rejoining must succeed
            self.deaths += 1
            self._worker._drop()
            raise ConnectionError("injected fault: worker death")
        if self._armed is not None:
            self._armed -= 1
        self.tasks_passed += 1
        return self._original(*args, **kwargs)
