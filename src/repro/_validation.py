"""Small argument-validation helpers shared across the library.

These helpers raise the library's own exception types with uniform,
informative messages, and normalise array-likes to ``numpy`` arrays so the
numeric kernels can rely on dtype and dimensionality invariants.
"""

from __future__ import annotations

import numpy as np

from .errors import ConfigurationError, SignalError

__all__ = [
    "as_1d_float_array",
    "as_1d_complex_array",
    "as_2d_complex_array",
    "require_power_of_two",
    "require_positive",
    "require_in_range",
    "is_power_of_two",
]


def is_power_of_two(n: int) -> bool:
    """Return True when *n* is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def require_power_of_two(n: int, name: str = "n") -> int:
    """Validate that *n* is a positive power of two and return it as int."""
    n = int(n)
    if not is_power_of_two(n):
        raise ConfigurationError(f"{name} must be a positive power of two, got {n}")
    return n


def require_positive(value: float, name: str = "value") -> float:
    """Validate that *value* is strictly positive and return it as float."""
    value = float(value)
    if not value > 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def require_in_range(
    value: float, low: float, high: float, name: str = "value"
) -> float:
    """Validate ``low <= value <= high`` and return *value* as float."""
    value = float(value)
    if not (low <= value <= high):
        raise ConfigurationError(
            f"{name} must be in [{low}, {high}], got {value}"
        )
    return value


def as_1d_float_array(x, name: str = "x", min_length: int = 1) -> np.ndarray:
    """Return *x* as a 1-D float64 array, validating shape and finiteness."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise SignalError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size < min_length:
        raise SignalError(
            f"{name} must have at least {min_length} samples, got {arr.size}"
        )
    if not np.all(np.isfinite(arr)):
        raise SignalError(f"{name} contains non-finite values")
    return arr


def as_1d_complex_array(x, name: str = "x", min_length: int = 1) -> np.ndarray:
    """Return *x* as a 1-D complex128 array, validating shape and finiteness."""
    arr = np.asarray(x, dtype=np.complex128)
    if arr.ndim != 1:
        raise SignalError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size < min_length:
        raise SignalError(
            f"{name} must have at least {min_length} samples, got {arr.size}"
        )
    if not np.all(np.isfinite(arr)):
        raise SignalError(f"{name} contains non-finite values")
    return arr


def as_2d_complex_array(x, name: str = "x", width: int | None = None) -> np.ndarray:
    """Return *x* as a 2-D complex128 batch, validating shape and finiteness.

    ``width`` pins the second (per-row transform) dimension; the batched
    kernels use it to reject inputs that do not match the plan size.
    """
    arr = np.asarray(x, dtype=np.complex128)
    if arr.ndim != 2:
        raise SignalError(
            f"{name} must be two-dimensional (rows, n), got shape {arr.shape}"
        )
    if width is not None and arr.shape[1] != width:
        raise SignalError(
            f"{name} rows have length {arr.shape[1]}, expected {width}"
        )
    if not np.all(np.isfinite(arr)):
        raise SignalError(f"{name} contains non-finite values")
    return arr
