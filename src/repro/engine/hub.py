"""Streaming cohorts: many concurrent sessions, one shared batch.

A :class:`StreamHub` (opened with :meth:`repro.engine.Engine.open_hub`)
owns one :class:`~repro.engine.streaming.StreamingSession` per subject
and multiplexes their analysis.  Feeding a hub-owned session does not
analyse anything by itself: the windows each feed completes join the
hub's *pending set*, and :meth:`StreamHub.flush` analyses everything
pending — across all subjects — in **one** batched call through
:func:`repro.lomb.welch.analyze_spans_quality`, the same choke point
every other execution mode uses.  N trickling monitors therefore get
dense-kernel throughput (one batch of N windows per feed round) instead
of N tiny per-session batches; when the owning engine resolved
``jobs > 1``, the shared batch is dispatched over the engine's
persistent fleet pool (:meth:`repro.fleet.runner.FleetRunner.run_spans`)
through the existing shared-memory transport.

The shared batch is built by concatenating the pending windows' sample
slices back to back — exactly the copies the batch kernel would make
per window anyway — so deferral and multiplexing change *when* spectra
are computed, never what they are: per-window kernels are
batch-composition-independent (the invariant the fleet's sharded merges
rely on), hence every subject's :meth:`finalize` stays bit-identical
(spectrogram *and* :class:`~repro.ffts.opcount.OpCounts`) to a
whole-recording :meth:`Engine.analyze`, regardless of how feeds from
different subjects interleave.

Typical ward-monitor use::

    with Engine(config) as engine:
        hub = engine.open_hub()
        for events in beat_rounds:            # [(subject, t, rr), ...]
            emitted = hub.feed_round(events)  # one shared batch
            for subject, emissions in emitted.items():
                update_monitor(subject, emissions)
        results = hub.finalize_all()          # == per-subject analyze()

For push-based async ingestion (``await session.feed(...)``,
``async for emission in session``, ``await hub.serve(reader)``) see
:mod:`repro.engine.aio`.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from ..errors import ConfigurationError, SignalError
from ..hrv.rr import RRSeries
from ..perf.workspace import Scratch
from .controller import QualityController, degradation_ladder
from .streaming import StreamingSession

__all__ = ["StreamHub"]


class StreamHub:
    """Multiplexer of many concurrent streaming sessions over one engine.

    Built by :meth:`repro.engine.Engine.open_hub`; not constructed
    directly.  Subjects are keyed by an arbitrary hashable id (patient
    ids, device serials); feeding an unseen subject opens its session
    on the spot.  All sessions share the owning engine's resolved
    execution state, and their pending windows are analysed together by
    :meth:`flush` — in-process under the engine's pins, or over the
    engine's persistent fleet pool when it resolved ``jobs > 1``.
    """

    def __init__(self, engine, count_ops: bool = False):
        self._engine = engine
        self._count_ops = bool(count_ops)
        self._sessions: dict = {}
        # Pending completed windows across all sessions, in feed order:
        # (session, window start, buffer lo, buffer hi).  Buffer indices
        # stay valid until the owning session compacts, which flush only
        # does after analysing them.
        self._pending: list[tuple[StreamingSession, float, int, int]] = []
        # subject_id -> AsyncStreamingSession, maintained by repro.engine.aio.
        self._async_sessions: dict = {}
        # Serialises emission delivery: two concurrent flush deliveries
        # interleaving could hand one subject its windows out of order.
        self._deliver_lock = asyncio.Lock()
        self._closed = False
        # Quality-adaptive control: the degradation ladder this hub's
        # subjects can run at (level 0 = the configured quality) and,
        # when the engine config carries an SLOSpec, the controller that
        # moves them along it after each flush.  The clock and the
        # flush-latency hook are injectable so the fault harness
        # (repro.testing.faults) can skew time and inject latency
        # deterministically.
        self.ladder = degradation_ladder(engine.config)
        #: Quality-level histogram of the most recent flush
        #: (``{level: windows}``); empty before the first flush.  Read
        #: by observers — the shedding benchmark and the fault
        #: harness's latency cost model — after each flush.
        self.last_flush_levels: dict = {}
        self._clock = time.perf_counter
        self._flush_latency_fault = None
        if engine.config.slo is not None:
            self._controller = QualityController(
                self, engine.config.slo, clock=lambda: self._clock()
            )
        else:
            self._controller = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def engine(self):
        """The owning :class:`~repro.engine.Engine`."""
        return self._engine

    @property
    def subjects(self) -> tuple:
        """Subject ids with an open session, in first-seen order."""
        return tuple(self._sessions)

    @property
    def pending_windows(self) -> int:
        """Completed windows waiting for the next :meth:`flush`."""
        return len(self._pending)

    def session(self, subject_id) -> StreamingSession:
        """The subject's session (:class:`SignalError` if unknown)."""
        try:
            return self._sessions[subject_id]
        except KeyError:
            raise SignalError(
                f"unknown subject {subject_id!r}; open it or feed it first"
            ) from None

    # ------------------------------------------------------------------
    # Quality control
    # ------------------------------------------------------------------

    @property
    def controller(self):
        """The attached :class:`QualityController`, or ``None``.

        Present exactly when the owning engine's config carries an
        :class:`~repro.engine.controller.SLOSpec`.
        """
        return self._controller

    def quality_level(self, subject_id) -> int:
        """The subject's current degradation-ladder level (0 = full)."""
        return self.session(subject_id)._quality_level

    def set_quality(self, subject_id, level: int, pin: bool = True) -> None:
        """Set (and by default pin) a subject's quality level.

        A pinned subject is exempt from controller decisions — both
        step-downs and recovery — until re-set with ``pin=False``.
        Levels index :attr:`ladder`; the new level applies from the next
        flush on (windows already analysed keep their recorded quality).
        """
        session = self.session(subject_id)
        level = int(level)
        if not 0 <= level < len(self.ladder):
            raise ConfigurationError(
                f"quality level must be in [0, {len(self.ladder) - 1}], "
                f"got {level}"
            )
        session._quality_level = level
        session._quality_pinned = bool(pin)

    def set_tier(self, subject_id, tier: str | None) -> None:
        """Assign a subject to a policy tier.

        Tiers only matter under an :class:`SLOSpec` with
        ``tier_floors``: a tiered subject sheds no deeper than its
        tier's floor (tier ``None`` clears the assignment).
        """
        if tier is not None and (not isinstance(tier, str) or not tier):
            raise ConfigurationError(
                f"tier must be a non-empty string or None, got {tier!r}"
            )
        self.session(subject_id).tier = tier

    def controller_stats(self) -> dict:
        """The controller's decision log, levels and counters.

        Raises :class:`~repro.errors.ConfigurationError` when the
        engine config carries no :class:`SLOSpec` — asking a hub that
        cannot shed for its shedding record is a configuration mistake,
        not an empty answer.
        """
        if self._controller is None:
            raise ConfigurationError(
                "hub has no quality controller: configure "
                "EngineConfig(slo=SLOSpec(...)) to enable load shedding"
            )
        return self._controller.stats()

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def open(self, subject_id) -> StreamingSession:
        """Open (and register) the subject's streaming session.

        The returned session is hub-owned: its ``feed`` defers analysis
        to the hub's shared batch and returns ``[]`` — emissions come
        back from :meth:`flush` (or the session's ``emissions`` record).
        """
        self._check_open()
        if subject_id in self._sessions:
            raise SignalError(f"subject {subject_id!r} is already open")
        session = StreamingSession(self._engine, count_ops=self._count_ops)
        session._hub = self
        session.subject_id = subject_id
        self._sessions[subject_id] = session
        return session

    def open_async(
        self, subject_id, *, max_queue: int | None = None,
        attach: bool = False,
    ):
        """Open the subject as an async push/pull session.

        Returns an :class:`~repro.engine.aio.AsyncStreamingSession`
        (``await feed(...)`` / ``async for emission in session``) whose
        emission queue is bounded by ``max_queue`` — a slow consumer
        backpressures the feeder.  ``attach=True`` re-binds an existing
        subject whose previous async endpoint was closed (the
        reconnect path — see :class:`AsyncStreamingSession`).
        """
        from .aio import AsyncStreamingSession

        if max_queue is None:
            return AsyncStreamingSession(self, subject_id, attach=attach)
        return AsyncStreamingSession(
            self, subject_id, max_queue=max_queue, attach=attach
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def feed(self, subject_id, times, values, corrected=None) -> int:
        """Feed samples to a subject (opening it on first sight).

        Validation and window-completion rules are the session's
        (:meth:`StreamingSession.feed`); completed windows join the
        pending set instead of being analysed.  ``corrected``
        optionally marks interpolated beats (it feeds the per-window
        quality flags).  Returns the number of windows this feed
        completed (now pending).
        """
        self._check_open()
        session = self._sessions.get(subject_id)
        if session is None:
            session = self.open(subject_id)
        before = len(self._pending)
        session.feed(times, values, corrected)
        return len(self._pending) - before

    def feed_record(self, subject_id, rr: RRSeries) -> int:
        """Feed a whole :class:`RRSeries` chunk to a subject."""
        if not isinstance(rr, RRSeries):
            raise SignalError("feed_record expects an RRSeries")
        return self.feed(subject_id, rr.times, rr.intervals, rr.corrected)

    def feed_round(self, events) -> dict:
        """Feed one round of interleaved events, then flush once.

        ``events`` is an iterable of ``(subject_id, times, values)``
        triples — or ``(subject_id, times, values, corrected)``
        4-tuples, the shape :mod:`repro.ingest` sources emit — the way
        a ward of wearables delivers each uplink round.  All windows
        the round completes, across every subject, are analysed in one
        shared batch; returns :meth:`flush`'s
        ``{subject_id: [WindowEmission, ...]}`` mapping.
        """
        for subject_id, times, values, *rest in events:
            self.feed(subject_id, times, values, *rest)
        return self.flush()

    def _enqueue(self, session: StreamingSession, pending) -> None:
        """Session callback: completed windows join the shared batch."""
        self._check_open()
        for start, (lo, hi) in pending:
            self._pending.append((session, start, lo, hi))

    # ------------------------------------------------------------------
    # Shared-batch analysis
    # ------------------------------------------------------------------

    def flush(self) -> dict:
        """Analyse every pending window in one shared batch per level.

        Returns ``{subject_id: [WindowEmission, ...]}`` for the subjects
        that emitted, in feed order per subject.  The batch runs through
        the engine: in-process under its pinned provider/chunk, or over
        its persistent fleet pool when it resolved ``jobs > 1``.  When a
        quality controller is attached, the flush's latency and backlog
        feed its control loop — its decisions take effect from the
        *next* flush.
        """
        backlog = len(self._pending)
        t0 = self._clock()
        with self._engine._profile_span("hub_flush"):
            emitted = self._analyze_pending(self._pending)
        # Cleared only after the batch succeeded: a failing analysis
        # (say a fleet worker died mid-flush) must keep the round's
        # windows pending for a retry, not silently drop spectrogram
        # rows from every affected subject's finalize.
        self._pending = []
        elapsed = self._clock() - t0
        if self._flush_latency_fault is not None:
            # Fault-harness hook: injected latency is *added to the
            # observation*, never slept — chaos tests steer the
            # controller without slowing the suite down.
            elapsed += float(self._flush_latency_fault(self, backlog, elapsed))
        if self._controller is not None:
            self._controller.observe(elapsed, backlog, emitted)
        return emitted

    def _analyze_pending(self, pending) -> dict:
        self.last_flush_levels = {}
        if not pending:
            return {}
        # Group the pending windows by the owning session's *effective*
        # quality level: each group is one span batch under that level's
        # kernels through the usual choke point.  Grouping only changes
        # batch composition, which per-window kernels are independent
        # of — a subject at level L here is bit-identical to the same
        # windows under a homogeneous level-L engine.
        levels: list = []
        by_level: dict[int, list[int]] = {}
        for i, (session, _, _, _) in enumerate(pending):
            variant, level = session._effective_variant()
            levels.append((variant, level))
            by_level.setdefault(level, []).append(i)
        self.last_flush_levels = {
            level: len(indices) for level, indices in by_level.items()
        }
        spectra: list = [None] * len(pending)
        metrics: list = [None] * len(pending)
        for level in sorted(by_level):
            indices = by_level[level]
            variant = levels[indices[0]][0]
            group = [pending[i] for i in indices]
            # Concatenate the group's sample slices back to back — the
            # same copies the batch kernel makes per window.  The
            # concatenation buffers lease from the engine's arena, so at
            # steady state each flush reuses the previous round's
            # storage; the analysis only reads them and every escaping
            # spectrum is freshly allocated, so releasing on exit is
            # safe.
            edges = np.zeros(len(group) + 1, dtype=np.int64)
            np.cumsum([hi - lo for _, _, lo, hi in group], out=edges[1:])
            total = int(edges[-1])
            spans = tuple(
                (int(lo), int(hi)) for lo, hi in zip(edges[:-1], edges[1:])
            )
            with Scratch(self._engine.arena) as ws:
                t_cat = ws.take((total,))
                x_cat = ws.take((total,))
                c_cat = ws.take((total,))
                for (session, _, lo, hi), dst_lo, dst_hi in zip(
                    group, edges[:-1], edges[1:]
                ):
                    t_cat[dst_lo:dst_hi] = session._times[lo:hi]
                    x_cat[dst_lo:dst_hi] = session._values[lo:hi]
                    c_cat[dst_lo:dst_hi] = session._corrected[lo:hi]
                group_spectra, group_metrics = (
                    self._engine._analyze_spans_batch(
                        t_cat,
                        x_cat,
                        spans,
                        self._count_ops,
                        variant=variant,
                        corrected=c_cat,
                    )
                )
            for i, spectrum, window in zip(
                indices, group_spectra, group_metrics
            ):
                spectra[i] = spectrum
                metrics[i] = window
        # Record in original feed order regardless of grouping, so each
        # subject's emission indices and delivery order are exactly what
        # a homogeneous hub would produce.
        emitted: dict = {}
        touched: dict = {}
        for (session, start, lo, hi), spectrum, window, (_, level) in zip(
            pending, spectra, metrics, levels
        ):
            emission = session._record(
                start, lo, hi, spectrum, window, quality=level
            )
            emitted.setdefault(session.subject_id, []).append(emission)
            touched[id(session)] = session
        for session in touched.values():
            # flush always takes a session's *whole* deferred set, so
            # nothing references its buffer anymore: safe to compact.
            session._deferred = 0
            session._compact()
        return emitted

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finalize(self, subject_id):
        """Finalize one subject (flushing the shared batch first).

        Returns the subject's :class:`~repro.core.system.PSAResult` —
        bit-identical to :meth:`Engine.analyze` of the same samples.
        The session stays registered (its result is idempotent).
        """
        return self.session(subject_id).finalize()

    def finalize_all(self) -> dict:
        """Finalize every subject; ``{subject_id: PSAResult}``.

        The trailing windows the recording ends resolve are themselves
        analysed as one shared cross-subject batch before per-subject
        assembly.  A subject too short to analyse raises
        :class:`SignalError` naming it.
        """
        if not self._sessions:
            raise SignalError("hub has no subjects: nothing to finalize")
        self.flush()
        # Validate every subject and collect every tail *before* any
        # analysis or assembly, so a doomed subject (too short, or no
        # analysable window at all) fails the call without mutating its
        # siblings; the emit-once guard below makes a retry after any
        # later failure safe (tails are never re-recorded).
        tails: list[tuple[StreamingSession, float, int, int]] = []
        tailed: list[StreamingSession] = []
        for subject_id, session in self._sessions.items():
            if session.finalized or session._tail_emitted:
                continue
            try:
                session._check_finalizable()
            except SignalError as exc:
                raise SignalError(f"subject {subject_id!r}: {exc}") from None
            tail = session._tail_pending()
            if not session._spectra and not tail:
                raise SignalError(
                    f"subject {subject_id!r}: no analysable windows: "
                    "recording too short or too sparse"
                )
            for start, (lo, hi) in tail:
                tails.append((session, start, lo, hi))
            tailed.append(session)
        self._analyze_pending(tails)
        for session in tailed:
            session._skipped += session._tail_skips
            session._tail_emitted = True
        results: dict = {}
        for subject_id, session in self._sessions.items():
            try:
                results[subject_id] = session.finalize()
            except SignalError as exc:
                raise SignalError(f"subject {subject_id!r}: {exc}") from None
        return results

    # ------------------------------------------------------------------
    # Async transport
    # ------------------------------------------------------------------

    async def serve(self, events, *, round_events: int = 64,
                    finalize: bool = True):
        """Serve an (a)sync iterator of interleaved subject events.

        See :func:`repro.engine.aio.serve`, which this delegates to:
        pulls ``(subject_id, times, values)`` events, flushes the
        shared batch every ``round_events`` events, delivers emissions
        to async consumers with backpressure, and (by default)
        finalizes every subject when the source is exhausted.
        """
        from .aio import serve

        return await serve(
            self, events, round_events=round_events, finalize=finalize
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise SignalError("hub is closed")

    def close(self) -> None:
        """Close the hub: further feeds are rejected.

        Pending (un-flushed) windows are discarded — call
        :meth:`finalize_all` first if the results matter.  Sessions
        already finalized keep their results; async consumers receive
        the end-of-stream marker so nobody is left awaiting a dead
        queue.  Idempotent.
        """
        self._closed = True
        pending, self._pending = self._pending, []
        for session, _, _, _ in pending:
            # Discarded windows can never be re-discovered (their
            # session's window cursor is already past them), so a later
            # finalize would silently return an incomplete spectrogram
            # — poison it to fail loudly instead.
            session._lost_windows = True
        for async_session in list(self._async_sessions.values()):
            async_session._end()
        self._async_sessions.clear()

    def __enter__(self) -> "StreamHub":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
