"""Unified Engine/Session API — the library's execution facade.

One declarative, serializable configuration
(:class:`~repro.engine.config.EngineConfig`) describes *what* to run
(system kind, pruning spec, pipeline geometry, band edges) and *how*
(FFT provider, batch chunk size, worker processes); one
:class:`~repro.engine.engine.Engine` object resolves it, warms the plan
caches and serves whole recordings (:meth:`~repro.engine.engine.Engine.analyze`),
cohorts over a persistent fleet pool
(:meth:`~repro.engine.engine.Engine.analyze_cohort`), live streams
(:meth:`~repro.engine.engine.Engine.open_stream` →
:class:`~repro.engine.streaming.StreamingSession`) and streaming
*cohorts* (:meth:`~repro.engine.engine.Engine.open_hub` →
:class:`~repro.engine.hub.StreamHub`, multiplexing many concurrent
sessions into shared analysis batches, with an asyncio push transport
in :mod:`repro.engine.aio`) through identical, bit-reproducible
kernels.

Attaching an :class:`~repro.engine.controller.SLOSpec`
(``EngineConfig(slo=...)``) arms every hub with a
:class:`~repro.engine.controller.QualityController` that defends the
SLO under overload by shedding subjects down the paper's pruning-mode
ladder — quality-adaptive load shedding instead of backlog growth.

Note: :class:`QualityController` here is the *runtime* load-shedding
controller; the top-level :class:`repro.QualityController` is the
paper's design-time quality-mode selector (:mod:`repro.core.adaptive`).
"""

from .aio import AsyncStreamingSession
from .config import EngineConfig, ResolvedExecution, SYSTEM_KINDS
from .controller import (
    QualityController,
    QualityLevel,
    SLOSpec,
    degradation_ladder,
)
from .engine import Engine, build_system
from .hub import StreamHub
from .streaming import StreamingSession, WindowEmission

__all__ = [
    "AsyncStreamingSession",
    "Engine",
    "EngineConfig",
    "QualityController",
    "QualityLevel",
    "ResolvedExecution",
    "SLOSpec",
    "SYSTEM_KINDS",
    "StreamHub",
    "StreamingSession",
    "WindowEmission",
    "build_system",
    "degradation_ladder",
]
