"""Unified Engine/Session API — the library's execution facade.

One declarative, serializable configuration
(:class:`~repro.engine.config.EngineConfig`) describes *what* to run
(system kind, pruning spec, pipeline geometry, band edges) and *how*
(FFT provider, batch chunk size, worker processes); one
:class:`~repro.engine.engine.Engine` object resolves it, warms the plan
caches and serves whole recordings (:meth:`~repro.engine.engine.Engine.analyze`),
cohorts over a persistent fleet pool
(:meth:`~repro.engine.engine.Engine.analyze_cohort`), live streams
(:meth:`~repro.engine.engine.Engine.open_stream` →
:class:`~repro.engine.streaming.StreamingSession`) and streaming
*cohorts* (:meth:`~repro.engine.engine.Engine.open_hub` →
:class:`~repro.engine.hub.StreamHub`, multiplexing many concurrent
sessions into shared analysis batches, with an asyncio push transport
in :mod:`repro.engine.aio`) through identical, bit-reproducible
kernels.
"""

from .aio import AsyncStreamingSession
from .config import EngineConfig, ResolvedExecution, SYSTEM_KINDS
from .engine import Engine, build_system
from .hub import StreamHub
from .streaming import StreamingSession, WindowEmission

__all__ = [
    "AsyncStreamingSession",
    "Engine",
    "EngineConfig",
    "ResolvedExecution",
    "SYSTEM_KINDS",
    "StreamHub",
    "StreamingSession",
    "WindowEmission",
    "build_system",
]
