"""Unified Engine/Session API — the library's execution facade.

One declarative, serializable configuration
(:class:`~repro.engine.config.EngineConfig`) describes *what* to run
(system kind, pruning spec, pipeline geometry, band edges) and *how*
(FFT provider, batch chunk size, worker processes); one
:class:`~repro.engine.engine.Engine` object resolves it, warms the plan
caches and serves whole recordings (:meth:`~repro.engine.engine.Engine.analyze`),
cohorts over a persistent fleet pool
(:meth:`~repro.engine.engine.Engine.analyze_cohort`) and live streams
(:meth:`~repro.engine.engine.Engine.open_stream` →
:class:`~repro.engine.streaming.StreamingSession`) through identical,
bit-reproducible kernels.
"""

from .config import EngineConfig, ResolvedExecution, SYSTEM_KINDS
from .engine import Engine, build_system
from .streaming import StreamingSession, WindowEmission

__all__ = [
    "Engine",
    "EngineConfig",
    "ResolvedExecution",
    "SYSTEM_KINDS",
    "StreamingSession",
    "WindowEmission",
    "build_system",
]
