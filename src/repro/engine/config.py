"""The declarative engine configuration: one serializable surface.

:class:`EngineConfig` collects everything the execution facade needs to
know — *what* to run (PSA system kind, pruning spec, pipeline geometry,
band edges) and *how* to run it (FFT execution provider, batch chunk
size, worker processes) — in one immutable dataclass that round-trips
losslessly through ``to_dict``/``from_dict`` and JSON.  A config file
written on one host fully describes an analysis on another.

Resolution of the execution knobs happens once, at
:meth:`EngineConfig.resolve`, with one documented precedence chain per
knob (environment pins are folded in *here*, via
:mod:`repro.envpins` — the one module that reads the process
environment):

====================  =================================================
provider              explicit argument → config field → process pin
                      (:func:`~repro.ffts.providers.registry.set_default_provider`)
                      → ``REPRO_FFT_PROVIDER`` env pin → autoselect
                      probe
chunk_windows         explicit argument → config field → process pin
                      (:func:`~repro.lomb.fast.set_batch_chunk_windows`)
                      → ``REPRO_BATCH_CHUNK_WINDOWS`` env pin →
                      per-host auto-tuner
jobs                  explicit argument → config field → one per CPU
worker_timeout        explicit argument → config field →
                      ``REPRO_WORKER_TIMEOUT`` env pin → 15 s default
====================  =================================================
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace

from ..core.config import PSAConfig
from ..errors import ConfigurationError
from ..ffts.pruning import PruningSpec
from ..hrv.bands import STANDARD_BANDS, FrequencyBand

__all__ = ["EngineConfig", "ResolvedExecution", "SYSTEM_KINDS"]

#: The two PSA system kinds the paper compares.
SYSTEM_KINDS = ("conventional", "quality-scalable")

#: CLI-style pruning mode names accepted by :meth:`EngineConfig.for_mode`.
_MODE_SPECS = {
    "exact": PruningSpec.none,
    "band": PruningSpec.band_only,
}


@dataclass(frozen=True)
class ResolvedExecution:
    """Concrete execution settings one :meth:`EngineConfig.resolve` chose.

    Attributes
    ----------
    provider:
        Resolved FFT execution provider name (always concrete).
    provider_source:
        Which precedence layer decided: ``"explicit"``, ``"config"``,
        ``"process-pin"``, ``"env"`` or ``"autoselect"``.
    chunk_windows:
        Resolved windows-per-sub-batch of the batched execution path.
    chunk_source:
        ``"explicit"``, ``"config"``, ``"env"`` or ``"autotuned"``.
    jobs:
        Concrete worker-process count for cohort runs (>= 1).
    jobs_source:
        ``"explicit"``, ``"config"`` or ``"cpu-count"``.
    workers:
        Remote worker daemon addresses (``host:port``) cohort runs
        schedule onto alongside the local slots; empty for local-only.
    workers_source:
        ``"explicit"``, ``"config"`` or ``"default"``.
    worker_timeout:
        Remote worker connect/heartbeat timeout in seconds (> 0).
    worker_timeout_source:
        ``"explicit"``, ``"config"``, ``"env"`` or ``"default"``.
    """

    provider: str
    provider_source: str
    chunk_windows: int
    chunk_source: str
    jobs: int
    jobs_source: str
    workers: tuple[str, ...] = ()
    workers_source: str = "default"
    worker_timeout: float = 15.0
    worker_timeout_source: str = "default"


@dataclass(frozen=True)
class EngineConfig:
    """Immutable, fully serializable configuration of the engine facade.

    Attributes
    ----------
    system:
        PSA system kind: ``"conventional"`` (split-radix baseline) or
        ``"quality-scalable"`` (the pruned wavelet-FFT system).
    pruning:
        Approximation spec of the quality-scalable system (ignored by
        the conventional one, but preserved through serialization).
    psa:
        Shared pipeline geometry (:class:`~repro.core.config.PSAConfig`:
        workspace size, Welch window/overlap, oversampling, band limit,
        wavelet basis, scaling).
    provider:
        FFT execution provider name to pin, or ``None`` to fall through
        the resolution chain (process pin → env pin → autoselect).
    chunk_windows:
        Batched-execution sub-batch size to pin, or ``None`` to fall
        through (env pin → per-host auto-tuner).
    jobs:
        Worker processes for cohort runs; ``None`` means one per CPU.
    workers:
        ``host:port`` addresses of remote fleet worker daemons
        (``python -m repro worker --listen HOST:PORT``) to schedule
        cohort shards onto alongside the local worker processes.  Empty
        (the default) keeps execution on this host.  Results are
        bit-identical either way: each daemon rebuilds the engine from
        this config and runs under the scheduler's resolved
        provider/chunk pins.
    worker_timeout:
        Remote worker connect/heartbeat timeout in seconds (> 0), or
        ``None`` to fall through the resolution chain
        (``REPRO_WORKER_TIMEOUT`` env pin → 15 s default).  Bounds how
        long the scheduler waits for a daemon's handshake and how stale
        a heartbeat may go before the worker counts as dead.
    slo:
        Optional :class:`~repro.engine.controller.SLOSpec`.  When set,
        every :class:`~repro.engine.StreamHub` this engine opens
        attaches a :class:`~repro.engine.controller.QualityController`
        that defends the SLO by stepping overloaded subjects down the
        paper's pruning-mode ladder (and back up with hysteresis when
        load recedes).  ``None`` (the default) keeps every subject at
        the configured quality forever.
    bands:
        Band-power integration edges reported in results (defaults to
        the standard ULF/VLF/LF/HF split).
    arena:
        When True (default) the engine owns a
        :class:`~repro.perf.WorkspaceArena` and every workload leases
        its kernel temporaries from it, making steady-state streaming
        allocate O(1) new arrays per flush.  Results are bit-identical
        either way; ``arena=False`` restores plain per-call allocation
        (mainly useful for memory benchmarking).
    profile:
        When True the engine owns a
        :class:`~repro.perf.StageProfiler` and activates it around
        every workload, accumulating per-stage timings (extirpolation,
        FFT dispatch, Lomb combine, assemble, hub flush) readable via
        :attr:`Engine.profiler`.  Off by default: the disabled path
        costs one None-check per kernel call.
    """

    system: str = "conventional"
    pruning: PruningSpec = PruningSpec.none()
    psa: PSAConfig = PSAConfig()
    provider: str | None = None
    chunk_windows: int | None = None
    jobs: int | None = 1
    workers: tuple[str, ...] = ()
    worker_timeout: float | None = None
    slo: "SLOSpec | None" = None
    bands: tuple[FrequencyBand, ...] = STANDARD_BANDS
    arena: bool = True
    profile: bool = False

    def __post_init__(self):
        if self.system not in SYSTEM_KINDS:
            raise ConfigurationError(
                f"system must be one of {SYSTEM_KINDS}, got {self.system!r}"
            )
        if not isinstance(self.pruning, PruningSpec):
            raise ConfigurationError("pruning must be a PruningSpec")
        if not isinstance(self.psa, PSAConfig):
            raise ConfigurationError("psa must be a PSAConfig")
        if self.provider is not None:
            from ..ffts.providers.registry import require_known

            object.__setattr__(self, "provider", require_known(self.provider))
        if self.chunk_windows is not None:
            if int(self.chunk_windows) < 1:
                raise ConfigurationError(
                    f"chunk_windows must be >= 1, got {self.chunk_windows}"
                )
            object.__setattr__(self, "chunk_windows", int(self.chunk_windows))
        if self.jobs is not None:
            if int(self.jobs) < 1:
                raise ConfigurationError(
                    f"jobs must be >= 1 (or None for one per CPU), "
                    f"got {self.jobs}"
                )
            object.__setattr__(self, "jobs", int(self.jobs))
        workers = tuple(self.workers)
        for address in workers:
            if not isinstance(address, str):
                raise ConfigurationError(
                    "workers must be 'host:port' strings, got "
                    f"{type(address).__name__}"
                )
            from ..fleet.transport import parse_address

            parse_address(address)
        object.__setattr__(self, "workers", workers)
        if self.worker_timeout is not None:
            try:
                timeout = float(self.worker_timeout)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    "worker_timeout must be a number (seconds), got "
                    f"{self.worker_timeout!r}"
                ) from None
            if not timeout > 0:
                raise ConfigurationError(
                    f"worker_timeout must be > 0, got {timeout}"
                )
            object.__setattr__(self, "worker_timeout", timeout)
        if self.slo is not None:
            from .controller import SLOSpec

            if not isinstance(self.slo, SLOSpec):
                raise ConfigurationError("slo must be an SLOSpec")
        bands = tuple(self.bands)
        for band in bands:
            if not isinstance(band, FrequencyBand):
                raise ConfigurationError("bands must be FrequencyBand entries")
        if not bands:
            raise ConfigurationError("bands must not be empty")
        object.__setattr__(self, "bands", bands)
        object.__setattr__(self, "arena", bool(self.arena))
        object.__setattr__(self, "profile", bool(self.profile))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def for_mode(
        cls, mode: str, dynamic: bool = False, **overrides
    ) -> "EngineConfig":
        """Config for a CLI-style pruning mode name.

        ``"exact"`` selects the conventional system; ``"band"`` and
        ``"set1"``/``"set2"``/``"set3"`` select the quality-scalable
        system under the matching :class:`PruningSpec` (``dynamic``
        applies run-time twiddle pruning).  Additional keyword
        arguments become config fields (``provider=``, ``jobs=``, ...).
        """
        name = str(mode).strip().lower()
        if name in _MODE_SPECS:
            spec = _MODE_SPECS[name]()
            if dynamic:
                raise ConfigurationError(
                    f"mode {name!r} has no dynamic variant"
                )
        elif name.startswith("set") and name[3:] in ("1", "2", "3"):
            spec = PruningSpec.paper_mode(int(name[3:]), dynamic=dynamic)
        else:
            raise ConfigurationError(
                f"unknown pruning mode {name!r}; choose from "
                "exact, band, set1, set2, set3"
            )
        system = "conventional" if name == "exact" else "quality-scalable"
        return cls(system=system, pruning=spec, **overrides)

    def replace(self, **changes) -> "EngineConfig":
        """Copy with the given fields changed (dataclass ``replace``)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data (JSON-ready) representation of this config."""
        return {
            "system": self.system,
            "pruning": {
                "band_drop": self.pruning.band_drop,
                "twiddle_fraction": self.pruning.twiddle_fraction,
                "dynamic": self.pruning.dynamic,
                "dynamic_threshold": self.pruning.dynamic_threshold,
            },
            "psa": {
                "fft_size": self.psa.fft_size,
                "window_seconds": self.psa.window_seconds,
                "overlap": self.psa.overlap,
                "oversample": self.psa.oversample,
                "max_frequency": self.psa.max_frequency,
                "basis": self.psa.basis,
                "scaling": self.psa.scaling,
            },
            "provider": self.provider,
            "chunk_windows": self.chunk_windows,
            "jobs": self.jobs,
            "workers": list(self.workers),
            "worker_timeout": self.worker_timeout,
            "slo": None if self.slo is None else self.slo.to_dict(),
            "bands": [
                {"name": band.name, "low": band.low, "high": band.high}
                for band in self.bands
            ],
            "arena": self.arena,
            "profile": self.profile,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EngineConfig":
        """Reconstruct a config from :meth:`to_dict` output.

        Missing keys take their defaults (a config file may specify only
        what it changes); unknown keys are a
        :class:`~repro.errors.ConfigurationError` — silently ignoring a
        typo like ``"chunk_window"`` would mis-run the analysis.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"engine config must be a mapping, got {type(data).__name__}"
            )
        known = {
            "system", "pruning", "psa", "provider", "chunk_windows",
            "jobs", "workers", "worker_timeout", "slo", "bands",
            "arena", "profile",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown engine config keys: {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )
        kwargs: dict = {}
        for key in (
            "system", "provider", "chunk_windows", "jobs",
            "worker_timeout", "arena", "profile",
        ):
            if key in data:
                kwargs[key] = data[key]
        if data.get("slo") is not None:
            from .controller import SLOSpec

            kwargs["slo"] = SLOSpec.from_dict(data["slo"])
        if "pruning" in data:
            pruning = data["pruning"]
            if not isinstance(pruning, dict):
                raise ConfigurationError("pruning must be a mapping")
            kwargs["pruning"] = PruningSpec(**pruning)
        if "psa" in data:
            psa = data["psa"]
            if not isinstance(psa, dict):
                raise ConfigurationError("psa must be a mapping")
            kwargs["psa"] = PSAConfig(**psa)
        if "workers" in data:
            workers = data["workers"]
            if isinstance(workers, str) or not hasattr(workers, "__iter__"):
                raise ConfigurationError(
                    "workers must be a list of 'host:port' strings"
                )
            kwargs["workers"] = tuple(workers)
        if "bands" in data:
            kwargs["bands"] = tuple(
                FrequencyBand(**band) for band in data["bands"]
            )
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(f"invalid engine config: {exc}") from None

    def to_json(self, indent: int | None = 2) -> str:
        """JSON text of :meth:`to_dict` (round-trips losslessly)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "EngineConfig":
        """Reconstruct a config from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"engine config is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path) -> "EngineConfig":
        """Load a config from a JSON file path."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read engine config {path!r}: {exc}"
            ) from None
        return cls.from_json(text)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve(
        self,
        provider: str | None = None,
        chunk_windows: int | None = None,
        jobs: int | None = None,
        workers=None,
        worker_timeout: float | None = None,
    ) -> ResolvedExecution:
        """Resolve every execution knob through its precedence chain.

        The arguments are per-call explicit pins (the top of each
        chain); everything below them is the config field, then the
        environment pins (read through :mod:`repro.envpins` — the env
        vars are folded in *here*, at resolve time, never stored in the
        config), then the automatic probes.  An env-pinned provider
        that is unavailable on this host falls back to ``"numpy"`` (the
        documented optional-dependency fallback); every other layer
        validates strictly.
        """
        from ..envpins import (
            chunk_env_pin,
            provider_env_pin,
            worker_timeout_env_pin,
        )
        from ..ffts.providers import registry

        workspace = self.psa.fft_size
        if provider is not None:
            provider = registry.require_known(provider)
            provider_name, provider_source = (
                registry.resolve_provider_name(provider, workspace),
                "explicit",
            )
        elif self.provider is not None:
            provider_name, provider_source = (
                registry.resolve_provider_name(self.provider, workspace),
                "config",
            )
        elif registry.get_default_provider_name() is not None:
            provider_name, provider_source = (
                registry.get_default_provider_name(),
                "process-pin",
            )
        elif provider_env_pin() is not None:
            # Delegate to the registry chain (we are below the explicit
            # and process-pin layers here) so "auto" and the
            # unavailable-provider fallback behave exactly as documented
            # there.
            provider_name, provider_source = (
                registry.resolve_provider_name(None, workspace),
                "env",
            )
        else:
            provider_name, provider_source = (
                registry.autoselect(workspace).provider,
                "autoselect",
            )

        from ..lomb.fast import get_batch_chunk_windows, get_chunk_override

        if chunk_windows is not None:
            chunk_windows = int(chunk_windows)
            if chunk_windows < 1:
                raise ConfigurationError(
                    f"chunk_windows must be >= 1, got {chunk_windows}"
                )
            chunk, chunk_source = chunk_windows, "explicit"
        elif self.chunk_windows is not None:
            chunk, chunk_source = self.chunk_windows, "config"
        elif get_chunk_override() is not None:
            chunk, chunk_source = get_chunk_override(), "process-pin"
        elif chunk_env_pin() is not None:
            chunk, chunk_source = chunk_env_pin(), "env"
        else:
            # get_batch_chunk_windows owns the memoised per-host probe
            # (override and env are both None here, so it falls through
            # to the tuner) — one cache, never re-probed per resolve.
            chunk, chunk_source = (
                get_batch_chunk_windows(workspace),
                "autotuned",
            )

        if jobs is not None:
            if int(jobs) < 1:
                raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
            n_jobs, jobs_source = int(jobs), "explicit"
        elif self.jobs is not None:
            n_jobs, jobs_source = self.jobs, "config"
        else:
            n_jobs, jobs_source = os.cpu_count() or 1, "cpu-count"

        if workers is not None:
            from ..fleet.transport import parse_address

            worker_list = tuple(workers)
            for address in worker_list:
                parse_address(address)
            workers_source = "explicit"
        elif self.workers:
            worker_list, workers_source = self.workers, "config"
        else:
            worker_list, workers_source = (), "default"

        if worker_timeout is not None:
            timeout = float(worker_timeout)
            if not timeout > 0:
                raise ConfigurationError(
                    f"worker_timeout must be > 0, got {worker_timeout}"
                )
            timeout_source = "explicit"
        elif self.worker_timeout is not None:
            timeout, timeout_source = self.worker_timeout, "config"
        elif worker_timeout_env_pin() is not None:
            timeout, timeout_source = worker_timeout_env_pin(), "env"
        else:
            from ..fleet.remote import DEFAULT_TIMEOUT

            timeout, timeout_source = DEFAULT_TIMEOUT, "default"

        return ResolvedExecution(
            provider=provider_name,
            provider_source=provider_source,
            chunk_windows=int(chunk),
            chunk_source=chunk_source,
            jobs=n_jobs,
            jobs_source=jobs_source,
            workers=worker_list,
            workers_source=workers_source,
            worker_timeout=float(timeout),
            worker_timeout_source=timeout_source,
        )
