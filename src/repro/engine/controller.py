"""Quality-adaptive load shedding: the runtime SLO controller.

The source paper's contribution is a quality/energy *dial* — pruning
modes that trade spectral fidelity for compute.  The repo models that
dial statically (:mod:`repro.analysis.tradeoff`,
:mod:`repro.platform.energy`); this module turns it into a server
overload story: a saturated :class:`~repro.engine.hub.StreamHub` sheds
load by stepping subjects *down the paper's mode ladder* instead of
falling behind or dropping data, and steps them back up when load
recedes.

Two pieces:

* :class:`SLOSpec` — the immutable, JSON-round-trippable service-level
  objective attached via ``EngineConfig(slo=SLOSpec(...))``: target
  flush-latency p95, maximum pending-window backlog, step-down and
  recovery hysteresis windows, the shedding policy (per-subject or
  uniform), floor/ceiling quality levels and per-tier floor overrides.
* :class:`QualityController` — attached to the hub at construction when
  the engine config carries an :class:`SLOSpec`.  On every
  :meth:`StreamHub.flush` it observes the flush latency (the same
  per-call quantity the ``hub_flush`` profiler stage times, kept in a
  rolling :class:`~repro.perf.LatencyWindow`) and the backlog the flush
  drained, and moves subjects along the *degradation ladder*: the base
  config's quality (level 0) followed by every
  :data:`~repro.analysis.tradeoff.PAPER_MODE_LADDER` mode strictly
  deeper than it.  Step-downs need ``step_down_after`` consecutive
  breaching flushes, recovery needs ``recover_after`` consecutive
  flushes below ``recovery_margin`` of the target — observations in
  the band between the two thresholds reset both streaks, which is
  what prevents mode flapping under oscillating load.

Degradation changes *which analyzer* computes a window, never how:
windows of a subject at level L are analysed by the exact engine a
homogeneous level-L config would build, so every emission stays
bit-identical (spectrum and op counts) to that homogeneous run — the
hub groups its pending set by effective level and runs one span batch
per group through the usual choke point (see
:meth:`StreamHub._analyze_pending`).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace

from ..analysis.tradeoff import degradation_steps
from ..errors import ConfigurationError
from ..ffts.pruning import PruningSpec
from ..perf.profiler import LatencyWindow

__all__ = [
    "QualityController",
    "QualityLevel",
    "SLOSpec",
    "degradation_ladder",
]

#: Shedding policies: ``"per-subject"`` degrades the busiest subjects
#: first (half of the eligible set per step event, so convergence takes
#: O(log n) events); ``"uniform"`` moves every unpinned subject together.
POLICIES = ("per-subject", "uniform")

#: Decision-log entries kept by a controller (cumulative counters are
#: unbounded; the log itself is a ring so a week-long hub cannot grow it).
_MAX_DECISIONS = 256


@dataclass(frozen=True)
class QualityLevel:
    """One rung of a hub's degradation ladder.

    Attributes
    ----------
    level:
        Ladder index; 0 is the configured (full) quality.
    label:
        Human-readable mode name (``"full"`` or the
        :data:`~repro.analysis.tradeoff.PAPER_MODE_LADDER` label).
    system:
        PSA system kind this level runs (degraded levels always run the
        quality-scalable system — they *are* the paper's pruned modes).
    pruning:
        The level's :class:`~repro.ffts.pruning.PruningSpec`.
    """

    level: int
    label: str
    system: str
    pruning: PruningSpec


def degradation_ladder(config) -> tuple[QualityLevel, ...]:
    """The quality ladder one engine config's hub can shed along.

    Level 0 is the config itself; deeper levels are the paper modes
    :func:`~repro.analysis.tradeoff.degradation_steps` selects —
    strictly more pruned than the base, so stepping "down" can only
    reduce compute.  A config already at the deepest paper mode gets a
    one-rung ladder (nothing to shed to).
    """
    ladder = [
        QualityLevel(
            level=0, label="full", system=config.system, pruning=config.pruning
        )
    ]
    for label, spec in degradation_steps(config.system, config.pruning):
        ladder.append(
            QualityLevel(
                level=len(ladder),
                label=label,
                system="quality-scalable",
                pruning=spec,
            )
        )
    return tuple(ladder)


@dataclass(frozen=True)
class SLOSpec:
    """Immutable, serializable service-level objective for a hub.

    Attributes
    ----------
    target_p95_ms:
        Flush-latency p95 the controller defends (milliseconds).
    max_backlog:
        Pending windows a flush may drain before the hub counts as
        overloaded regardless of latency; ``None`` disables the
        backlog rule.
    window:
        Flush observations in the rolling p95 window.
    step_down_after:
        Consecutive breaching flushes before one step-down event.
    recover_after:
        Consecutive healthy flushes (p95 at or below
        ``recovery_margin * target_p95_ms`` *and* backlog within
        bounds) before one step-up event.
    recovery_margin:
        Fraction of the target below which a flush counts as healthy;
        the (margin, 1.0] band between healthy and breaching resets
        both hysteresis streaks, preventing flapping at the boundary.
    policy:
        ``"per-subject"`` (busiest subjects shed first) or
        ``"uniform"`` (all subjects move together).
    floor:
        Deepest ladder level the controller may shed to; ``None``
        means the bottom of the ladder.
    ceiling:
        Shallowest level recovery returns subjects to (0 = full
        quality).
    tier_floors:
        Per-tier floor overrides as ``{tier: floor_level}`` —
        subjects assigned a tier (:meth:`StreamHub.set_tier`) shed no
        deeper than their tier's floor, so a high-priority tier can be
        exempted (floor 0) while the rest of the ward absorbs the
        overload.  Stored canonically as a sorted tuple of pairs so
        the spec stays hashable.
    """

    target_p95_ms: float = 50.0
    max_backlog: int | None = None
    window: int = 16
    step_down_after: int = 2
    recover_after: int = 4
    recovery_margin: float = 0.7
    policy: str = "per-subject"
    floor: int | None = None
    ceiling: int = 0
    tier_floors: tuple[tuple[str, int], ...] = ()

    def __post_init__(self):
        if not float(self.target_p95_ms) > 0:
            raise ConfigurationError(
                f"target_p95_ms must be > 0, got {self.target_p95_ms}"
            )
        object.__setattr__(self, "target_p95_ms", float(self.target_p95_ms))
        if self.max_backlog is not None:
            if int(self.max_backlog) < 1:
                raise ConfigurationError(
                    f"max_backlog must be >= 1 (or None), got {self.max_backlog}"
                )
            object.__setattr__(self, "max_backlog", int(self.max_backlog))
        for name in ("window", "step_down_after", "recover_after"):
            value = getattr(self, name)
            if int(value) < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1, got {value}"
                )
            object.__setattr__(self, name, int(value))
        margin = float(self.recovery_margin)
        if not (0.0 < margin <= 1.0):
            raise ConfigurationError(
                f"recovery_margin must be in (0, 1], got {self.recovery_margin}"
            )
        object.__setattr__(self, "recovery_margin", margin)
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        if self.floor is not None:
            if int(self.floor) < 0:
                raise ConfigurationError(
                    f"floor must be >= 0 (or None), got {self.floor}"
                )
            object.__setattr__(self, "floor", int(self.floor))
        if int(self.ceiling) < 0:
            raise ConfigurationError(
                f"ceiling must be >= 0, got {self.ceiling}"
            )
        object.__setattr__(self, "ceiling", int(self.ceiling))
        if self.floor is not None and self.ceiling > self.floor:
            raise ConfigurationError(
                f"ceiling ({self.ceiling}) must not exceed floor ({self.floor})"
            )
        if isinstance(self.tier_floors, dict):
            tiers = self.tier_floors.items()
        else:
            tiers = tuple(self.tier_floors)
        canonical = []
        for tier, floor in sorted(tiers):
            if not isinstance(tier, str) or not tier:
                raise ConfigurationError(
                    "tier_floors keys must be non-empty strings"
                )
            if int(floor) < 0:
                raise ConfigurationError(
                    f"tier_floors[{tier!r}] must be >= 0, got {floor}"
                )
            canonical.append((tier, int(floor)))
        object.__setattr__(self, "tier_floors", tuple(canonical))

    def replace(self, **changes) -> "SLOSpec":
        """Copy with the given fields changed (dataclass ``replace``)."""
        return replace(self, **changes)

    def tier_floor(self, tier: str | None) -> int | None:
        """The floor override for *tier*, or ``None`` when it has none."""
        if tier is None:
            return None
        for name, floor in self.tier_floors:
            if name == tier:
                return floor
        return None

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data (JSON-ready) representation of this spec."""
        return {
            "target_p95_ms": self.target_p95_ms,
            "max_backlog": self.max_backlog,
            "window": self.window,
            "step_down_after": self.step_down_after,
            "recover_after": self.recover_after,
            "recovery_margin": self.recovery_margin,
            "policy": self.policy,
            "floor": self.floor,
            "ceiling": self.ceiling,
            "tier_floors": {tier: floor for tier, floor in self.tier_floors},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SLOSpec":
        """Reconstruct a spec from :meth:`to_dict` output.

        Missing keys take their defaults; unknown keys are a
        :class:`~repro.errors.ConfigurationError` (a typo like
        ``"max_backlogg"`` silently ignored would mis-run the SLO).
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"slo spec must be a mapping, got {type(data).__name__}"
            )
        known = {
            "target_p95_ms", "max_backlog", "window", "step_down_after",
            "recover_after", "recovery_margin", "policy", "floor",
            "ceiling", "tier_floors",
        }
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown slo spec keys: {sorted(unknown)}; "
                f"known keys: {sorted(known)}"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigurationError(f"invalid slo spec: {exc}") from None

    def to_json(self, indent: int | None = 2) -> str:
        """JSON text of :meth:`to_dict` (round-trips losslessly)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SLOSpec":
        """Reconstruct a spec from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"slo spec is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)


class QualityController:
    """SLO-driven degradation controller attached to one hub.

    Built by :class:`~repro.engine.hub.StreamHub` when the owning
    engine's config carries an :class:`SLOSpec`; not constructed
    directly by users.  The hub calls :meth:`observe` after every
    flush; the controller decides, the hub's per-session quality levels
    change, and the *next* flush analyses each subject's windows at its
    new level (levels are read at analysis time, so a decision never
    reinterprets windows already analysed).

    Parameters
    ----------
    hub:
        The owning :class:`~repro.engine.hub.StreamHub`.
    spec:
        The service-level objective to defend.
    clock:
        Monotonic clock used for nothing but the decision log's
        timestamps; injectable so the fault harness
        (:mod:`repro.testing.faults`) can skew it deterministically.
    """

    def __init__(self, hub, spec: SLOSpec, clock=time.perf_counter):
        self._hub = hub
        self.spec = spec
        self._clock = clock
        self._latency = LatencyWindow(size=spec.window)
        self._breach_streak = 0
        self._healthy_streak = 0
        self._flushes = 0
        self._steps_down = 0
        self._steps_up = 0
        self._windows_by_level: dict[int, int] = {}
        self._decisions: list[dict] = []
        ladder = hub.ladder
        bottom = len(ladder) - 1
        self._floor = bottom if spec.floor is None else min(spec.floor, bottom)
        self._ceiling = min(spec.ceiling, self._floor)

    # -- introspection -------------------------------------------------

    @property
    def ladder(self) -> tuple[QualityLevel, ...]:
        """The hub's degradation ladder this controller moves along."""
        return self._hub.ladder

    def p95_ms(self) -> float | None:
        """Rolling flush-latency p95 (ms), ``None`` before any flush."""
        seconds = self._latency.percentile(95.0)
        return None if seconds is None else seconds * 1e3

    def stats(self) -> dict:
        """Decision log plus current levels and cumulative counters.

        The hub re-exposes this as :meth:`StreamHub.controller_stats`.
        """
        ladder = self.ladder
        return {
            "slo": self.spec.to_dict(),
            "ladder": [entry.label for entry in ladder],
            "levels": {
                subject: session._quality_level
                for subject, session in self._hub._sessions.items()
            },
            "pinned": sorted(
                subject
                for subject, session in self._hub._sessions.items()
                if session._quality_pinned
            ),
            "flushes": self._flushes,
            "p95_ms": self.p95_ms(),
            "steps_down": self._steps_down,
            "steps_up": self._steps_up,
            "windows_by_level": dict(sorted(self._windows_by_level.items())),
            "decisions": list(self._decisions),
        }

    # -- subject floors ------------------------------------------------

    def _floor_for(self, session) -> int:
        tier_floor = self.spec.tier_floor(getattr(session, "tier", None))
        if tier_floor is None:
            return self._floor
        return min(tier_floor, len(self.ladder) - 1)

    def _movable(self):
        """Sessions the controller may move, in first-seen order."""
        return [
            session
            for session in self._hub._sessions.values()
            if not session._quality_pinned
        ]

    # -- the control loop ----------------------------------------------

    def observe(self, flush_seconds: float, backlog: int, emitted: dict) -> None:
        """Digest one flush: update the window, maybe step the ladder.

        ``flush_seconds`` is the flush's wall latency (plus any
        harness-injected latency), ``backlog`` the pending windows the
        flush drained, ``emitted`` the flush's
        ``{subject: [WindowEmission, ...]}`` result (used to rank
        subjects by busyness and to account shed windows per level).
        """
        self._flushes += 1
        self._latency.observe(flush_seconds)
        windows_by_subject: dict = {}
        for subject, emissions in emitted.items():
            windows_by_subject[subject] = len(emissions)
            for emission in emissions:
                level = emission.quality
                self._windows_by_level[level] = (
                    self._windows_by_level.get(level, 0) + 1
                )
        spec = self.spec
        p95_ms = self.p95_ms()
        backlog_breach = (
            spec.max_backlog is not None and backlog > spec.max_backlog
        )
        latency_breach = p95_ms is not None and p95_ms > spec.target_p95_ms
        healthy = (
            p95_ms is not None
            and p95_ms <= spec.recovery_margin * spec.target_p95_ms
            and not backlog_breach
        )
        if latency_breach or backlog_breach:
            self._healthy_streak = 0
            self._breach_streak += 1
            if self._breach_streak >= spec.step_down_after:
                self._breach_streak = 0
                reason = "backlog" if backlog_breach else "latency"
                self._step_down(reason, p95_ms, backlog, windows_by_subject)
        elif healthy:
            self._breach_streak = 0
            self._healthy_streak += 1
            if self._healthy_streak >= spec.recover_after:
                self._healthy_streak = 0
                self._step_up(p95_ms, backlog)
        else:
            # The hysteresis band between healthy and breaching: neither
            # streak may accumulate here, or load oscillating around the
            # target would flap subjects between modes.
            self._breach_streak = 0
            self._healthy_streak = 0

    def _step_down(
        self, reason: str, p95_ms, backlog: int, windows_by_subject: dict
    ) -> None:
        movable = [
            session
            for session in self._movable()
            if session._quality_level < self._floor_for(session)
        ]
        if not movable:
            return
        if self.spec.policy == "per-subject":
            # Busiest first: the subjects that put the most windows into
            # the observed flush buy the most latency back per step.
            # Half the eligible set per event converges in O(log n)
            # events without slamming the whole ward to the floor at
            # the first breach.
            movable.sort(
                key=lambda s: windows_by_subject.get(s.subject_id, 0),
                reverse=True,
            )
            movable = movable[: max(1, (len(movable) + 1) // 2)]
        moves = {}
        for session in movable:
            new = session._quality_level + 1
            moves[session.subject_id] = (session._quality_level, new)
            session._quality_level = new
        self._steps_down += 1
        self._log("step_down", reason, moves, p95_ms, backlog)

    def _step_up(self, p95_ms, backlog: int) -> None:
        moves = {}
        for session in self._movable():
            level = session._quality_level
            if level > self._ceiling:
                moves[session.subject_id] = (level, level - 1)
                session._quality_level = level - 1
        if not moves:
            return
        self._steps_up += 1
        self._log("step_up", "recovered", moves, p95_ms, backlog)

    def _log(
        self, action: str, reason: str, moves: dict, p95_ms, backlog: int
    ) -> None:
        self._decisions.append(
            {
                "flush": self._flushes,
                "time": float(self._clock()),
                "action": action,
                "reason": reason,
                "moves": moves,
                "p95_ms": p95_ms,
                "backlog": int(backlog),
            }
        )
        if len(self._decisions) > _MAX_DECISIONS:
            del self._decisions[: len(self._decisions) - _MAX_DECISIONS]
