"""Asyncio push transport over the streaming hub.

The synchronous :class:`~repro.engine.hub.StreamHub` is pull-shaped:
callers feed samples and flush when they choose.  This module adds the
push shape a live deployment wants — beats arrive over a socket or
message queue, consumers await spectra — without touching the analysis
itself, which stays in the hub's shared synchronous batches (numpy
releases no control to the event loop mid-kernel, so the analysis is
simply a fast synchronous step between awaits):

* :class:`AsyncStreamingSession` — one subject as an async endpoint:
  ``await session.feed(t, rr)`` pushes samples (flushing the hub's
  shared batch), ``async for emission in session`` consumes spectra
  from a **bounded** queue — a slow consumer backpressures the feeder —
  and ``await session.finalize()`` closes the stream with the usual
  bit-identical whole-recording result.
* :func:`serve` (also :meth:`StreamHub.serve`) — one task multiplexing
  an (a)sync iterator of interleaved ``(subject_id, times, values)``
  events over the hub: unseen subjects open on first sight, the shared
  cross-subject batch flushes every ``round_events`` events, emissions
  are delivered to async consumers, and exhaustion finalizes everyone.

Cancellation is clean by construction: every hub mutation happens in
one synchronous call between await points, so a task cancelled at any
await leaves all sessions consistent — samples retained, analysed
windows recorded — and the hub remains flushable and finalizable.
"""

from __future__ import annotations

import asyncio

from ..errors import SignalError
from ..hrv.rr import RRSeries

__all__ = ["AsyncStreamingSession", "serve"]

#: Default bound of an async session's emission queue.
DEFAULT_MAX_QUEUE = 256

#: End-of-stream marker delivered to emission queues.
_SENTINEL = object()


async def _as_async_iter(events):
    """Adapt a sync iterable of events to the async protocol."""
    if hasattr(events, "__aiter__"):
        async for event in events:
            yield event
    else:
        for event in events:
            yield event


async def _deliver(hub, flushed: dict) -> None:
    """Route a flush's emissions to the registered async consumers.

    Subjects without an async session just keep their emissions in the
    session record; registered queues are bounded, so delivery awaits —
    the backpressure path from consumer to feeder.
    """
    if not flushed or not hub._async_sessions:
        # Nothing to route (also keeps the lock unbound to any loop
        # for hubs served without async consumers — a hub outlives one
        # asyncio.run only if its asyncio primitives were never used).
        return
    # One delivery at a time per hub: without the lock, a delivery
    # blocked on one subject's full queue lets a concurrent feeder's
    # later flush deliver that subject's *newer* windows first.
    async with hub._deliver_lock:
        await _deliver_unlocked(hub, flushed)


async def _deliver_unlocked(hub, flushed: dict) -> None:
    """:func:`_deliver`'s body, for callers already holding the lock."""
    for subject_id, emissions in flushed.items():
        async_session = hub._async_sessions.get(subject_id)
        if async_session is None:
            continue
        for emission in emissions:
            if async_session._ended:
                # Ended mid-delivery (aclose on an abandoned
                # consumer): stop pushing into its queue instead of
                # re-wedging on it; the emissions stay in the
                # session record either way.
                break
            await async_session._queue.put(emission)


async def _drain(hub) -> None:
    """Flush-and-deliver until nothing is pending.

    Delivery awaits (bounded queues), and other feeder tasks may run
    during those awaits and complete more windows — one flush is not
    enough before a synchronous finalize, whose *internal* flush would
    analyse such late windows without delivering them to their
    consumers.  Looping until a flush finds nothing pending closes the
    gap: after the last (empty) flush no await separates us from the
    caller's finalize, so no task can sneak windows in between.
    """
    while True:
        flushed = hub.flush()
        if not flushed:
            return
        await _deliver(hub, flushed)


class AsyncStreamingSession:
    """One hub subject as an asyncio push/pull endpoint.

    Built by :meth:`StreamHub.open_async`.  Typical use — one feeder,
    one consumer::

        session = hub.open_async("icu-bed-7")

        async def feeder():
            async for t, rr in beat_socket:
                await session.feed(t, rr)
            result = await session.finalize()

        async def consumer():
            async for emission in session:
                update_monitor(emission.center, emission.spectrum)

    ``feed`` pushes samples into the subject's stream and flushes the
    hub's shared batch, so windows completed by *any* subject since the
    last flush are analysed together and delivered; the emission queue
    is bounded (``max_queue``), so a consumer that cannot keep up makes
    ``feed`` await — backpressure instead of unbounded buffering.  Pass
    ``max_queue=0`` for an unbounded queue if emissions are consumed
    only after the fact.

    Backpressure is hub-wide: deliveries from the shared batch are
    serialised, so one subject's stalled consumer eventually stalls
    every feeder on the hub (head-of-line blocking is the price of the
    shared batch + bounded queues).  A consumer that stops iterating
    must release its queue — call :meth:`aclose` in a ``finally`` (or
    use ``max_queue=0``) so an abandoned subject cannot wedge the ward.

    ``attach=True`` re-binds an *existing* hub subject (one whose
    previous async endpoint was :meth:`aclose`'d — a dropped network
    connection, say) instead of opening a fresh session: the underlying
    :class:`StreamingSession` keeps every sample and emission it already
    holds, so a reconnecting feeder resumes exactly where the
    disconnect interrupted it and finalizes bit-identically.  Windows
    analysed while no consumer was attached are not replayed into the
    new queue — they remain in ``session.emissions`` and in the final
    result.  Attaching a subject that still has a live async endpoint
    raises :class:`SignalError` (two consumers would race one queue);
    attaching an unseen subject simply opens it.
    """

    def __init__(
        self,
        hub,
        subject_id,
        max_queue: int = DEFAULT_MAX_QUEUE,
        attach: bool = False,
    ):
        self._hub = hub
        if attach and subject_id in hub._sessions:
            if subject_id in hub._async_sessions:
                raise SignalError(
                    f"subject {subject_id!r} already has a live async "
                    "consumer; close it before re-attaching"
                )
            hub._check_open()
            self._session = hub._sessions[subject_id]
        else:
            self._session = hub.open(subject_id)
        self._queue: asyncio.Queue = asyncio.Queue(max_queue)
        self._ended = False
        hub._async_sessions[subject_id] = self

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def subject_id(self):
        """The hub key this endpoint feeds."""
        return self._session.subject_id

    @property
    def session(self):
        """The wrapped synchronous :class:`StreamingSession`."""
        return self._session

    @property
    def finalized(self) -> bool:
        return self._session.finalized

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    async def feed(self, times, values, corrected=None) -> None:
        """Push RR samples and flush the hub's shared batch.

        Validation and window rules are
        :meth:`StreamingSession.feed`'s (including the optional
        interpolated-beat mask); emissions (this subject's and any
        other pending subject's) are delivered to the registered async
        consumers, awaiting on full queues.
        """
        self._hub.feed(self.subject_id, times, values, corrected)
        # One loop tick before flushing: sibling feeders runnable this
        # round enqueue *their* samples first, so the first feeder to
        # reach the flush batches the whole round's windows across
        # subjects (the rest find nothing pending) — the hub's shared
        # dense batch instead of N per-subject slivers.
        await asyncio.sleep(0)
        await _deliver(self._hub, self._hub.flush())

    async def feed_record(self, rr: RRSeries) -> None:
        """Push a whole :class:`RRSeries` chunk."""
        if not isinstance(rr, RRSeries):
            raise SignalError("feed_record expects an RRSeries")
        await self.feed(rr.times, rr.intervals, rr.corrected)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------

    def __aiter__(self) -> "AsyncStreamingSession":
        return self

    async def __anext__(self):
        if self._ended:
            # Ended stream: drain what is buffered, then stop — the
            # sentinel is only needed as a wakeup for a getter already
            # blocked on an empty queue (see _end).
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                raise StopAsyncIteration from None
        else:
            item = await self._queue.get()
        if item is _SENTINEL:
            raise StopAsyncIteration
        return item

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def finalize(self):
        """Flush, finalize this subject, and end its async iteration.

        The trailing windows finalization resolves are delivered to the
        consumer before the end-of-stream marker, so ``async for``
        observes every window of the result.  Returns the
        :class:`~repro.core.system.PSAResult` — the same bit-identical
        whole-recording result :meth:`StreamingSession.finalize`
        guarantees.
        """
        try:
            await _drain(self._hub)
            # Under the delivery lock: a sibling feeder's in-flight
            # delivery may still hold *this* subject's earlier windows
            # (its flush scooped the shared pending set); the tail and
            # the end marker must queue up behind them, not overtake.
            async with self._hub._deliver_lock:
                # Siblings may have completed windows while we awaited
                # the lock; flush-and-deliver until quiescent, or the
                # synchronous finalize's internal flush would analyse
                # them and silently discard their delivery.
                while True:
                    flushed = self._hub.flush()
                    if not flushed:
                        break
                    await _deliver_unlocked(self._hub, flushed)
                already = self._session.n_windows
                result = self._hub.finalize(self.subject_id)
                for emission in self._session.emissions[already:]:
                    await self._queue.put(emission)
        finally:
            # Even a failing finalize (too-short subject, dead fleet
            # worker) must end the iteration — a consumer blocked on
            # the queue would otherwise hang forever.
            self._end()
        return result

    async def aclose(self) -> None:
        """End async iteration without finalizing (cancellation path).

        Safe to call from a consumer that has stopped draining its own
        full queue — ending never blocks, the abandoned queue is
        discarded (every emission remains in ``session.emissions``),
        and any feeder blocked on it is released.  The underlying
        session stays intact — a supervisor can still
        :meth:`StreamHub.finalize` the subject after tearing the
        transport down.  Idempotent.
        """
        self._end(discard=True)

    def _end(self, discard: bool = False) -> None:
        """End the stream: wake any blocked consumer, lose nothing.

        Synchronous and deadlock-free by construction: a consumer can
        only be blocked inside ``queue.get()`` while the queue is
        *empty*, so the sentinel wakeup always fits; when the queue is
        full (``QueueFull``) no getter is blocked, and the ``_ended``
        flag ends iteration once the consumer drains the buffered
        emissions (see ``__anext__``).  ``discard`` (the abandoning
        :meth:`aclose` path) empties the queue instead — nobody will
        read it, and draining releases a feeder blocked mid-delivery on
        it (``_deliver`` stops at ended sessions).  Idempotent.
        """
        if self._ended:
            return
        self._ended = True
        self._hub._async_sessions.pop(self.subject_id, None)
        if discard:
            if not self._queue.empty():
                # Non-empty queue => no getter is blocked (gets only
                # wait on empty), so no sentinel is needed — and one
                # would refill the slot just drained and re-wedge the
                # very putter the drain released.  Drain instead; a
                # later __anext__ ends via the _ended pre-check.
                while True:
                    try:
                        self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        return
            # Empty queue: a consumer may be blocked in get() — fall
            # through to the sentinel wakeup (it always fits here).
        try:
            self._queue.put_nowait(_SENTINEL)
        except asyncio.QueueFull:  # pragma: no cover - no getter waits
            pass


async def serve(hub, events, *, round_events: int = 64,
                finalize: bool = True):
    """Multiplex an (a)sync iterator of interleaved events over a hub.

    ``events`` yields ``(subject_id, times, values)`` triples — or
    ``(subject_id, times, values, corrected)`` 4-tuples, the shape
    :mod:`repro.ingest` sources emit — in arrival order, subjects
    interleaved however the transport delivers them.  Each event feeds
    its subject's stream (unseen subjects open on first sight); every
    ``round_events`` events — and once at source exhaustion — the hub
    flushes, analysing all completed windows across all subjects in one
    shared batch, and the emissions are delivered to any async
    consumers (:meth:`StreamHub.open_async`) with backpressure.

    With ``finalize=True`` (default), exhaustion finalizes every
    subject — trailing windows in one last shared batch — ends the
    async consumers' iteration, and returns ``{subject_id:
    PSAResult}``; ``finalize=False`` returns ``None`` and leaves the
    hub open for more rounds.

    Cancelling the serving task is clean: hub state only mutates in
    synchronous steps between awaits, so every session stays
    consistent and the hub can be flushed, served again, or finalized
    afterwards.
    """
    if round_events < 1:
        raise SignalError(
            f"round_events must be >= 1, got {round_events}"
        )
    count = 0
    try:
        async for subject_id, times, values, *rest in _as_async_iter(events):
            hub.feed(subject_id, times, values, *rest)
            count += 1
            if count >= round_events:
                await _deliver(hub, hub.flush())
                count = 0
        await _drain(hub)
    except asyncio.CancelledError:
        # Clean cancellation is resumable by design: sessions stay
        # consistent and consumers stay subscribed for the next serve.
        raise
    except BaseException:
        # A failing source or feed must not strand consumers on queues
        # nobody will feed again; end them (never blocks).
        for async_session in list(hub._async_sessions.values()):
            async_session._end()
        raise
    if not finalize:
        return None
    # End every async consumer even when finalization fails — a raising
    # finalize_all must not leave consumers awaiting forever — and
    # deliver the trailing windows it resolves before the end marker.
    async_sessions = list(hub._async_sessions.values())
    already = {
        session.subject_id: session.session.n_windows
        for session in async_sessions
    }
    try:
        results = hub.finalize_all()
        # Tail delivery under the lock: it must queue up behind any
        # sibling task's in-flight delivery of earlier windows.
        async with hub._deliver_lock:
            for async_session in async_sessions:
                tail = async_session.session.emissions[
                    already[async_session.subject_id]:
                ]
                for emission in tail:
                    await async_session._queue.put(emission)
    finally:
        for async_session in async_sessions:
            async_session._end()
    return results
