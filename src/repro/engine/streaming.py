"""Streaming ingestion: window-at-a-time PSA over arriving RR samples.

A :class:`StreamingSession` (opened with
:meth:`repro.engine.Engine.open_stream`) accepts RR samples
incrementally — one beat at a time or in arbitrary ragged chunks — and
emits each Welch window's Lomb spectrum the moment the window
*completes*, i.e. as soon as a sample at or past the window's right
edge arrives.  This is the online-monitoring shape of wavelet-based
streaming HRV analysers: spectra become available with one-window
latency instead of after the whole recording.

Bit-identity with the batch path is a hard guarantee, not an
aspiration.  The session reproduces the Welch window layout of
:func:`repro.lomb.welch.iter_windows` *exactly* — the same float
accumulation of start times, the same ``searchsorted`` edge rule, the
same half-window keep filter and minimum-beat skip counter — and routes
every emitted window through
:func:`repro.lomb.welch.analyze_spans_quality`, the identical choke
point the whole-recording driver and the fleet workers use, under the
owning engine's pinned provider and chunk size.
Because every per-window kernel is batch-composition-independent (the
invariant the fleet's sharded merges already rely on), feeding a
recording sample-by-sample produces the same spectrogram, Welch
average and operation counts — bit for bit — as analysing the
completed recording in one call.

A window is only *final* once a sample at or beyond its right edge has
been seen (earlier samples can no longer arrive: times are strictly
increasing), so interior windows stream out as data flows and the
trailing partial window — whose extent depends on where the recording
ends — is resolved by :meth:`StreamingSession.finalize`, which returns
the same :class:`~repro.core.system.PSAResult` the batch path builds.

Memory is bounded: samples that precede the earliest window start the
session could still need are compacted away once enough of them
accumulate (the dropped count is tracked so :attr:`n_samples` keeps
reporting the whole stream), so a 24 h monitor holds roughly one window
of beats plus the compaction slack — not every beat since midnight.

A session may be owned by a :class:`~repro.engine.hub.StreamHub`, in
which case the windows a feed completes are *deferred*: the hub collects
them across all of its sessions and analyses them in one shared batch
(``feed`` then returns ``[]`` and the emissions come back from
:meth:`StreamHub.flush`).  Deferral changes when spectra are computed,
never what they are — per-window kernels are batch-composition
independent, so the bit-identity guarantee is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SignalError
from ..hrv.metrics import WindowMetrics
from ..hrv.rr import RRSeries
from ..lomb.fast import LombSpectrum
from ..lomb.welch import (
    MIN_BEATS_PER_WINDOW,
    analyze_spans_quality,
    assemble_result,
)
from ..perf.workspace import Scratch

__all__ = ["StreamingSession", "WindowEmission"]

#: Initial sample-buffer capacity (doubles as the recording grows).
_INITIAL_CAPACITY = 1024

#: Compact the sample buffer only once at least this many leading
#: samples are droppable — keeps the shift cost amortised (each sample
#: is moved O(1) times) while bounding the buffer to roughly one window
#: of beats plus this slack.
_COMPACT_MIN_DROPPABLE = 2048


@dataclass(frozen=True)
class WindowEmission:
    """One completed Welch window, emitted as soon as it closed.

    Attributes
    ----------
    index:
        Position of this window in the final spectrogram (row index).
    start:
        Nominal window start time (seconds, the Welch grid position).
    center:
        Centre time of the window's actual samples — matches
        ``WelchLombResult.window_times[index]``.
    spectrum:
        The window's Lomb spectrum (identical to
        ``WelchLombResult.window_spectra[index]``).
    quality:
        Degradation-ladder level this window was computed at (0 = the
        configured quality; deeper levels are the paper's pruning modes
        an SLO controller shed the subject to — see
        :mod:`repro.engine.controller`).  Always 0 outside a hub with
        an :class:`~repro.engine.controller.SLOSpec` configured.
    metrics:
        Per-window time-domain metrics and quality flags
        (:class:`~repro.hrv.metrics.WindowMetrics`), computed from the
        same beat span as the spectrum — matches
        ``WelchLombResult.window_metrics[index]``.
    """

    index: int
    start: float
    center: float
    spectrum: LombSpectrum
    quality: int = 0
    metrics: WindowMetrics | None = None


class StreamingSession:
    """Incremental RR ingestion with per-window spectral emission.

    Built by :meth:`repro.engine.Engine.open_stream`; not constructed
    directly.  Typical use::

        with Engine(config) as engine:
            session = engine.open_stream()
            for t, rr in beat_source:          # arrives over time
                for emission in session.feed(t, rr):
                    update_monitor(emission.center, emission.spectrum)
            result = session.finalize()        # == engine.analyze(...)

    ``feed`` accepts scalars or array chunks; emissions are returned
    from the ``feed`` call that completed them.  ``finalize`` analyses
    the trailing window(s) and assembles the full
    :class:`~repro.core.system.PSAResult`.
    """

    def __init__(self, engine, count_ops: bool = False):
        welch = engine.welch
        self._engine = engine
        self._analyzer = welch.analyzer
        self._window_seconds = float(welch.window_seconds)
        self._step = float(welch.window_seconds) * (1.0 - float(welch.overlap))
        self._count_ops = bool(count_ops)
        self._times = np.empty(_INITIAL_CAPACITY)
        self._values = np.empty(_INITIAL_CAPACITY)
        # Interpolated-beat provenance, kept as float64 0/1 so the same
        # buffer layout flows through every transport (the fleet's
        # shared-memory store is float64-only); an all-zeros mask is
        # bit-equivalent to "no provenance" in window_metrics_batch.
        self._corrected = np.zeros(_INITIAL_CAPACITY)
        self._n = 0
        self._dropped = 0
        self._next_start: float | None = None
        self._spectra: list[LombSpectrum] = []
        self._metrics: list[WindowMetrics] = []
        self._centers: list[float] = []
        self._emissions: list[WindowEmission] = []
        self._skipped = 0
        self._result = None
        self._tail_emitted = False
        self._tail_skips = 0
        # Set by StreamHub.close when it discards this session's
        # pending (analysed-never) windows: finalize must fail loudly
        # rather than return a result missing those rows.
        self._lost_windows = False
        # Windows handed to the owning hub and not yet analysed; their
        # spans reference this buffer, so compaction must wait for zero.
        self._deferred = 0
        # Set by StreamHub.open for hub-owned sessions; a hub defers the
        # analysis of completed windows to its shared cross-session batch.
        self._hub = None
        self.subject_id: str | None = None
        # Quality-adaptive state (hub sessions only; plain streams stay
        # at level 0 forever).  The level indexes the hub's degradation
        # ladder and is read at *analysis* time — a controller decision
        # between flushes never reinterprets already-analysed windows.
        self._quality_level = 0
        self._quality_pinned = False
        self.tier: str | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Samples fed so far (including compacted-away ones)."""
        return self._dropped + self._n

    @property
    def buffered_samples(self) -> int:
        """Samples currently held in memory (bounded by compaction)."""
        return self._n

    @property
    def n_windows(self) -> int:
        """Windows emitted so far (before finalize: completed ones only)."""
        return len(self._spectra)

    @property
    def emissions(self) -> tuple[WindowEmission, ...]:
        """Every window emitted so far, in window order."""
        return tuple(self._emissions)

    @property
    def finalized(self) -> bool:
        """True once :meth:`finalize` has produced the result."""
        return self._result is not None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def feed(self, times, values, corrected=None) -> list[WindowEmission]:
        """Append RR samples and emit every window they completed.

        ``times``/``values`` are scalars (one beat) or equal-length 1-D
        chunks: beat instants in seconds and the RR intervals they end.
        ``corrected`` optionally marks interpolated beats (bool or 0/1
        mask, same length) — it feeds the per-window quality flags and
        defaults to "no beats corrected".  Times must continue strictly
        increasing across the whole session.  Returns the (possibly
        empty) list of windows this chunk completed, in window order.
        Hub-owned sessions defer: the completed windows join the hub's
        pending set and this returns ``[]`` — the emissions come back
        from :meth:`StreamHub.flush`.
        """
        if self._hub is not None:
            # Before ingestion: a closed hub must reject the feed while
            # the samples are still the caller's.  Raising after
            # _ingest would consume window discovery (advancing
            # _next_start) and then drop the windows on the enqueue
            # check — finalize would silently miss those rows.
            self._hub._check_open()
        pending = self._ingest(times, values, corrected)
        if self._hub is not None:
            self._hub._enqueue(self, pending)
            self._deferred += len(pending)
            if self._deferred == 0:
                # Nothing pending references the buffer (this feed
                # completed no window, nor did earlier ones) — a sparse
                # subject must not grow without bound while its denser
                # hub siblings do all the flushing.
                self._compact()
            return []
        emissions = self._emit(pending)
        self._compact()
        return emissions

    def _ingest(
        self, times, values, corrected=None
    ) -> list[tuple[float, tuple[int, int]]]:
        """Validate and append a chunk; return the windows it completed.

        The returned pending entries are ``(start, (lo, hi))`` with
        buffer-relative sample spans — valid until the next
        :meth:`_compact` (which only runs once they are analysed).
        """
        if self._result is not None:
            raise SignalError("session is finalized; open a new stream")
        t_new = np.atleast_1d(np.asarray(times, dtype=np.float64))
        x_new = np.atleast_1d(np.asarray(values, dtype=np.float64))
        if t_new.ndim != 1 or x_new.ndim != 1:
            raise SignalError("feed expects scalars or 1-D chunks")
        if t_new.size != x_new.size:
            raise SignalError(
                f"times and values must match, got {t_new.size} "
                f"and {x_new.size}"
            )
        if t_new.size == 0:
            return []
        if not (np.all(np.isfinite(t_new)) and np.all(np.isfinite(x_new))):
            raise SignalError("fed samples contain non-finite values")
        if t_new.size > 1 and np.any(np.diff(t_new) <= 0):
            raise SignalError("times must be strictly increasing")
        if self._n and t_new[0] <= self._times[self._n - 1]:
            raise SignalError(
                f"times must be strictly increasing: got {t_new[0]} after "
                f"{self._times[self._n - 1]}"
            )
        if corrected is None:
            c_new = np.zeros(t_new.size)
        else:
            c_new = np.atleast_1d(
                np.asarray(corrected, dtype=np.float64)
            )
            if c_new.shape != t_new.shape:
                raise SignalError(
                    f"corrected mask must match times, got {c_new.size} "
                    f"and {t_new.size}"
                )
        self._append(t_new, x_new, c_new)
        if self._next_start is None:
            self._next_start = float(self._times[0])
        return self._drain()

    def feed_record(self, rr: RRSeries) -> list[WindowEmission]:
        """Feed a whole :class:`RRSeries` chunk (``times``/``intervals``).

        The series' ``corrected`` mask, when present, rides along into
        the per-window quality flags.
        """
        if not isinstance(rr, RRSeries):
            raise SignalError("feed_record expects an RRSeries")
        return self.feed(rr.times, rr.intervals, rr.corrected)

    def _append(
        self, t_new: np.ndarray, x_new: np.ndarray, c_new: np.ndarray
    ) -> None:
        needed = self._n + t_new.size
        if needed > self._times.size:
            capacity = max(self._times.size * 2, needed)
            for name in ("_times", "_values", "_corrected"):
                grown = np.empty(capacity)
                grown[: self._n] = getattr(self, name)[: self._n]
                setattr(self, name, grown)
        self._times[self._n : needed] = t_new
        self._values[self._n : needed] = x_new
        self._corrected[self._n : needed] = c_new
        self._n = needed

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _drain(self) -> list[tuple[float, tuple[int, int]]]:
        """Collect every window whose right edge the data has now passed.

        Emission requires a sample *strictly beyond* ``start + window``:
        a sample exactly on the edge closes the window's content but
        leaves open whether it is the recording's breaking final window
        (in which case no later windows exist) — that call is
        :meth:`finalize`'s, which knows where the recording ends.

        All windows one feed completes are analysed in **one** batched
        :func:`analyze_spans` call (a large chunk can complete dozens) —
        or, for hub-owned sessions, in the hub's shared cross-session
        batch — keeping the streaming path on the dense kernel;
        per-window results are batch-composition-independent, so this
        cannot change any emitted spectrum.
        """
        latest = float(self._times[self._n - 1])
        pending: list[tuple[float, tuple[int, int]]] = []
        while latest > self._next_start + self._window_seconds:
            span = self._evaluate_window(self._next_start)
            if span is not None:
                pending.append((self._next_start, span))
            self._next_start += self._step
        return pending

    def _compact(self) -> None:
        """Drop buffered samples no future window can reference.

        Every window still to come — streamed or finalize's tail —
        starts at or after ``_next_start``, and window spans are found
        with ``searchsorted(..., side="left")``, so samples strictly
        before ``_next_start`` can never be sliced again.  They are
        shifted out once :data:`_COMPACT_MIN_DROPPABLE` of them
        accumulate, which bounds the buffer to roughly one window of
        beats plus that slack on an endless stream.  Only called when no
        pending spans reference the buffer (after analysis, never
        between discovery and analysis).
        """
        if self._next_start is None:
            return
        cut = int(
            np.searchsorted(
                self._times[: self._n], self._next_start, side="left"
            )
        )
        if cut < _COMPACT_MIN_DROPPABLE:
            return
        remaining = self._n - cut
        # _next_start always trails the newest sample (see _drain), so
        # at least one sample survives and the monotonicity check in
        # _ingest keeps comparing against the true last-fed time.
        # The shift needs a bounce buffer (source and destination ranges
        # overlap); leasing it from the engine's arena makes steady-state
        # compaction allocation-free.
        with Scratch(self._engine.arena) as ws:
            bounce = ws.take((remaining,))
            for name in ("_times", "_values", "_corrected"):
                buffer = getattr(self, name)
                np.copyto(bounce, buffer[cut : self._n])
                buffer[:remaining] = bounce
        self._n = remaining
        self._dropped += cut

    def _effective_variant(self):
        """``(variant, level)`` this session currently computes at.

        Plain streams and undegraded hub subjects run the base config
        (variant ``None``, level 0); a hub subject the SLO controller
        stepped down runs its ladder level's kernels.  The tail emitted
        by :meth:`finalize` reads this too — a subject pinned at mode M
        must stay bit-identical to a homogeneous mode-M run *including*
        its final partial window.
        """
        if self._hub is None or self._quality_level == 0:
            return None, 0
        entry = self._hub.ladder[self._quality_level]
        return (entry.system, entry.pruning), entry.level

    def _emit(
        self, pending: list[tuple[float, tuple[int, int]]]
    ) -> list[WindowEmission]:
        """Analyse kept windows in one pinned batch and record them."""
        if not pending:
            return []
        t = self._times[: self._n]
        x = self._values[: self._n]
        c = self._corrected[: self._n]
        variant, level = self._effective_variant()
        analyzer = (
            self._analyzer
            if variant is None
            else self._engine._system_for_variant(variant).welch.analyzer
        )
        with self._engine._pinned():
            spectra, metrics = analyze_spans_quality(
                analyzer,
                t,
                x,
                [span for _, span in pending],
                self._count_ops,
                corrected=c,
            )
        return [
            self._record(start, lo, hi, spectrum, window, quality=level)
            for (start, (lo, hi)), spectrum, window in zip(
                pending, spectra, metrics
            )
        ]

    def _evaluate_window(self, start: float) -> tuple[int, int] | None:
        """The window's sample span, or ``None`` when it is dropped.

        Applies :func:`~repro.lomb.welch.iter_windows`' keep rule (at
        least two samples, actual span at least half the nominal
        duration) and :meth:`~repro.lomb.welch.WelchLomb.plan_windows`'
        minimum-beat rule (skipped windows are counted, exactly like
        the batch planner).
        """
        t = self._times[: self._n]
        lo = int(np.searchsorted(t, start, side="left"))
        hi = int(
            np.searchsorted(t, start + self._window_seconds, side="left")
        )
        if hi - lo < 2:
            return None
        if t[hi - 1] - t[lo] < 0.5 * self._window_seconds:
            return None
        if hi - lo < MIN_BEATS_PER_WINDOW:
            self._skipped += 1
            return None
        return lo, hi

    def _record(
        self,
        start: float,
        lo: int,
        hi: int,
        spectrum: LombSpectrum,
        metrics: WindowMetrics,
        quality: int = 0,
    ) -> WindowEmission:
        t = self._times[: self._n]
        center = 0.5 * (float(t[lo]) + float(t[hi - 1]))
        emission = WindowEmission(
            index=len(self._spectra),
            start=float(start),
            center=center,
            spectrum=spectrum,
            quality=int(quality),
            metrics=metrics,
        )
        self._spectra.append(spectrum)
        self._metrics.append(metrics)
        self._centers.append(center)
        self._emissions.append(emission)
        return emission

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finalize(self):
        """Close the stream and assemble the whole-recording result.

        Emits the trailing window(s) the end of the recording resolves
        — replicating the batch planner's stopping rule, including the
        final-window break — then assembles every emitted spectrum with
        :func:`~repro.lomb.welch.assemble_result` and applies the same
        clinical post-processing as :meth:`Engine.analyze`.  Idempotent:
        repeated calls return the same :class:`PSAResult`.
        """
        if self._result is not None:
            return self._result
        if self._lost_windows:
            raise SignalError(
                "cannot finalize: completed windows were discarded by "
                "the hub's close(); the result would silently miss "
                "spectrogram rows"
            )
        if self._hub is not None:
            # Deferred windows must be analysed (in the shared batch)
            # before the tail is resolved, or they would be lost.
            self._hub.flush()
        self._check_finalizable()
        if not self._tail_emitted:
            # Emit-once guard: if assembly below fails (or a hub-wide
            # finalize_all fails on a sibling after batching this tail),
            # a retry must not re-analyse, re-record or re-count the
            # same tail.
            self._emit(self._tail_pending())
            self._skipped += self._tail_skips
            self._tail_emitted = True
        return self._assemble()

    def _check_finalizable(self) -> None:
        if self.n_samples < MIN_BEATS_PER_WINDOW:
            raise SignalError(
                f"times must have at least {MIN_BEATS_PER_WINDOW} samples, "
                f"got {self.n_samples}"
            )

    def _tail_pending(self) -> list[tuple[float, tuple[int, int]]]:
        """The trailing window(s) the end of the recording resolves.

        Pure: the MIN_BEATS skips the tail contains are parked in
        ``_tail_skips`` instead of ``_skipped``, and applied by the
        caller exactly once under the emit-once guard — a failed
        finalize retried (or a hub finalize_all that collected this
        tail before failing on a sibling) must not double-count them.
        """
        skipped_before = self._skipped
        end_time = float(self._times[self._n - 1])
        tail: list[tuple[float, tuple[int, int]]] = []
        start = self._next_start
        while start < end_time:
            span = self._evaluate_window(start)
            if span is not None:
                tail.append((start, span))
            if start + self._window_seconds >= end_time:
                break
            start += self._step
        self._tail_skips = self._skipped - skipped_before
        self._skipped = skipped_before
        return tail

    def _assemble(self):
        """Assemble every emitted spectrum into the final result."""
        if not self._spectra:
            raise SignalError(
                "no analysable windows: recording too short or too sparse"
            )
        with self._engine._pinned():
            welch_result = assemble_result(
                self._spectra,
                np.asarray(self._centers),
                self._skipped,
                self._count_ops,
                metrics=self._metrics,
            )
            self._result = self._engine.system._finalize(welch_result)
        return self._result
