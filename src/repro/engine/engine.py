"""The execution facade: one object that owns how analyses run.

:class:`Engine` is the single public entry point over everything the
performance PRs built — the batched Welch-Lomb driver, the FFT execution
provider registry, the per-host chunk tuner and the sharded fleet
runner.  It is constructed from one declarative
:class:`~repro.engine.config.EngineConfig`, resolves every execution
knob exactly once (provider, chunk size, jobs), warms the plan caches
for the resolved provider, and then serves three workloads through the
same pinned execution state:

* :meth:`Engine.analyze` — one completed recording,
* :meth:`Engine.analyze_cohort` — many recordings over a **persistent**
  fleet pool (created lazily, reused across calls, released by
  :meth:`Engine.close` / the context-manager exit),
* :meth:`Engine.open_stream` — a :class:`~repro.engine.streaming.StreamingSession`
  that accepts RR samples as they arrive and emits per-window spectra
  the moment each Welch window completes,
* :meth:`Engine.open_hub` — a :class:`~repro.engine.hub.StreamHub`
  multiplexing many concurrent streaming sessions (a streaming
  *cohort*), analysing the windows each feed round completes across
  sessions in one shared batch — over the persistent fleet pool when
  ``jobs > 1`` — with an asyncio push transport in
  :mod:`repro.engine.aio`.

All four routes drive the identical kernels through
:func:`repro.lomb.welch.analyze_spans`, so their per-window spectra are
bit-identical by construction.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager

from ..core.system import ConventionalPSA, PSAResult, QualityScalablePSA
from ..errors import ConfigurationError
from ..ffts.plancache import warm_execution_caches
from ..hrv.rr import RRSeries
from ..lomb.fast import pinned_execution
from ..lomb.welch import analyze_spans_quality
from ..perf.profiler import NULL_SPAN, StageProfiler, profile_scope
from ..perf.workspace import WorkspaceArena, arena_scope
from .config import EngineConfig

__all__ = ["Engine", "build_system"]


def build_system(config: EngineConfig):
    """Construct the PSA system one config describes.

    ``"conventional"`` ignores the pruning spec (the split-radix
    baseline has nothing to prune); ``"quality-scalable"`` applies it.
    Either system's band-power integration edges are taken from the
    config.
    """
    if config.system == "conventional":
        system = ConventionalPSA(config.psa)
    else:
        system = QualityScalablePSA(config.psa, pruning=config.pruning)
    system.bands = config.bands
    return system


class Engine:
    """Resolved, warmed execution facade over one :class:`EngineConfig`.

    Parameters
    ----------
    config:
        The declarative analysis description; defaults to the paper's
        conventional system with auto-resolved execution settings.
    system:
        Pre-built PSA system to wrap instead of building one from the
        config (the legacy entry points delegate through this so their
        existing kernel instances — and any caller-installed state —
        stay in use).  The config still decides execution settings.
    warm:
        Warm the resolved provider's execution caches at construction
        (default); disable only when constructing many engines whose
        providers are already warm.

    The engine is cheap after the first construction for a given
    geometry — kernels come from the shared plan cache — and safe to
    use as a context manager; :meth:`close` only releases the optional
    fleet pool.
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        system=None,
        warm: bool = True,
    ):
        if config is None:
            config = EngineConfig()
        elif not isinstance(config, EngineConfig):
            raise ConfigurationError(
                f"config must be an EngineConfig, got {type(config).__name__}"
            )
        self.config = config
        self._system = system if system is not None else build_system(config)
        self.resolved = config.resolve()
        if warm:
            analyzer = self._system.welch.analyzer
            warm_execution_caches(
                analyzer.workspace_size, analyzer.order, self.resolved.provider
            )
        self._fleet = None
        # Quality variants: PSA systems for degraded ladder levels the
        # SLO controller sheds hub subjects to, built lazily (cheap
        # after the first — kernels come from the shared plan caches)
        # and keyed by (system kind, pruning spec).
        self._variants: dict = {}
        # The engine owns its workspace arena (shared by every workload
        # it serves, like the plan caches) and its per-stage profiler;
        # both are installed scope-wise around workloads by _pinned().
        self._arena = WorkspaceArena() if config.arena else None
        self._profiler = StageProfiler() if config.profile else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def system(self):
        """The wrapped PSA system (conventional or quality-scalable)."""
        return self._system

    @property
    def welch(self):
        """The windowed Welch-Lomb engine driving this facade."""
        return self._system.welch

    @property
    def arena(self):
        """This engine's :class:`~repro.perf.WorkspaceArena` (or ``None``).

        Kernel temporaries of every workload the engine serves lease
        from it; :meth:`WorkspaceArena.stats` exposes hit/miss/footprint
        counters.  ``None`` when the config disabled it.
        """
        return self._arena

    @property
    def profiler(self):
        """This engine's :class:`~repro.perf.StageProfiler` (or ``None``).

        Populated only when the config enabled ``profile=True``; read
        accumulated stage timings via :meth:`StageProfiler.report` /
        :meth:`StageProfiler.format_report`.
        """
        return self._profiler

    @classmethod
    def from_json(cls, text: str) -> "Engine":
        """Engine over a config serialized with ``EngineConfig.to_json``."""
        return cls(EngineConfig.from_json(text))

    @classmethod
    def from_file(cls, path) -> "Engine":
        """Engine over a JSON config file."""
        return cls(EngineConfig.from_file(path))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @contextmanager
    def _pinned(self):
        """Install this engine's execution state for the calling block.

        Every workload this engine serves executes under the same
        provider/chunk process pins, the engine's workspace arena (when
        enabled) and its profiler (when enabled), so results cannot
        depend on which entry point ran them; all previous state is
        restored on exit (engines must not leak state into code that
        never asked for them).
        """
        with ExitStack() as stack:
            stack.enter_context(
                pinned_execution(
                    self.resolved.provider, self.resolved.chunk_windows
                )
            )
            if self._arena is not None:
                stack.enter_context(arena_scope(self._arena))
            if self._profiler is not None:
                stack.enter_context(profile_scope(self._profiler))
            yield

    def _profile_span(self, stage: str):
        """A span on this engine's profiler (no-op when profiling is off).

        For engine-owned stages that run *outside* :meth:`_pinned`
        (the hub's flush wrapper dispatches to the fleet pool without
        installing process-wide state).
        """
        if self._profiler is None:
            return NULL_SPAN
        return self._profiler.span(stage)

    def analyze(self, rr: RRSeries, count_ops: bool = False) -> PSAResult:
        """Run the full PSA over one completed RR recording."""
        with self._pinned():
            return self._system.analyze(rr, count_ops=count_ops)

    def analyze_cohort(
        self, recordings, count_ops: bool = False
    ) -> list[PSAResult]:
        """Run the full PSA over many recordings with the fleet engine.

        Recordings may be :class:`RRSeries` or ``(times, values)``
        pairs.  The worker pool (``jobs > 1``) is created on first use
        and **persists across calls** — the serving pattern pays the
        fork/initialise cost once; :meth:`close` releases it.
        """
        runner = self._ensure_fleet()
        welch_results = runner.run(list(recordings), count_ops=count_ops)
        with self._pinned():
            return [self._system._finalize(welch) for welch in welch_results]

    def open_stream(self, count_ops: bool = False):
        """Open a :class:`StreamingSession` for incremental ingestion.

        The session accepts RR samples as they arrive (``feed`` /
        ``feed_record``), emits each Welch window's spectrum as soon as
        the window completes, and finalizes into the same
        :class:`~repro.core.system.PSAResult` a whole-recording
        :meth:`analyze` call would produce — bit-identically.
        """
        from .streaming import StreamingSession

        return StreamingSession(self, count_ops=count_ops)

    def open_hub(self, count_ops: bool = False):
        """Open a :class:`~repro.engine.hub.StreamHub` for a streaming cohort.

        The hub multiplexes many concurrent streaming sessions — one
        per subject — and analyses the windows each feed round
        completes *across sessions* in one shared batch (over the
        persistent fleet pool when this engine resolved ``jobs > 1``),
        while preserving every session's bit-identical finalization.
        """
        from .hub import StreamHub

        return StreamHub(self, count_ops=count_ops)

    def _system_for_variant(self, variant):
        """The PSA system for one quality variant (``None`` = base).

        A variant is a ``(system_kind, PruningSpec)`` pair — a rung of
        the hub's degradation ladder.  Degraded systems are built
        lazily from ``config.replace(...)`` and cached, so shedding a
        subject costs one plan-cache hit, not a rebuild; the pair *is*
        the identity of the computation, which is what makes a pinned
        mode-M subject bit-identical to a homogeneous mode-M engine.
        """
        if variant is None:
            return self._system
        system_kind, pruning = variant
        if (
            system_kind == self.config.system
            and pruning == self.config.pruning
        ):
            return self._system
        cached = self._variants.get(variant)
        if cached is None:
            cached = build_system(
                self.config.replace(system=system_kind, pruning=pruning)
            )
            self._variants[variant] = cached
        return cached

    def _analyze_spans_batch(
        self, times, values, spans, count_ops: bool, variant=None,
        corrected=None,
    ):
        """Run one span batch under this engine's execution policy.

        The streaming hub's choke-point hook: in-process under the
        pinned provider/chunk, or dispatched over the persistent fleet
        pool when the resolved job count calls for workers — both
        bit-identical by the batch-composition-independence invariant.
        ``variant`` selects a degraded quality level's kernels (a
        ``(system_kind, PruningSpec)`` pair); ``None`` runs the base
        config.  ``corrected`` is the optional interpolated-beat 0/1
        mask aligned with ``values``.  Returns ``(spectra, metrics)``
        with one :class:`~repro.hrv.metrics.WindowMetrics` per span.
        """
        if self.resolved.jobs > 1 or self.resolved.workers:
            # Workers own per-process arenas (installed by init_worker);
            # the arena scope here covers the runner's in-process
            # small-batch path, which executes in this process.
            with ExitStack() as stack:
                if self._arena is not None:
                    stack.enter_context(arena_scope(self._arena))
                if self._profiler is not None:
                    stack.enter_context(profile_scope(self._profiler))
                return self._ensure_fleet().run_spans(
                    times, values, spans, count_ops=count_ops,
                    variant=variant, corrected=corrected,
                )
        with self._pinned():
            return analyze_spans_quality(
                self._system_for_variant(variant).welch.analyzer,
                times, values, spans, count_ops, corrected=corrected,
            )

    def execution_stats(self) -> dict:
        """Observability snapshot of this engine's execution machinery.

        One plain-data dict (JSON-ready) collecting the resolved
        execution settings, the workspace arena's reuse counters
        (``None`` when the arena is disabled), the process-wide plan
        caches' LRU counters, and — when a fleet pool with remote
        workers exists — the per-worker transport byte/reconnect
        counters.  The service gateway's ``GET /v1/stats`` endpoint is
        built on this.
        """
        from ..ffts.plancache import plan_cache_detail

        return {
            "resolved": {
                "provider": self.resolved.provider,
                "provider_source": self.resolved.provider_source,
                "chunk_windows": self.resolved.chunk_windows,
                "jobs": self.resolved.jobs,
                "workers": list(self.resolved.workers),
            },
            "arena": None if self._arena is None else self._arena.stats(),
            "plan_cache": plan_cache_detail(),
            "transport": (
                {} if self._fleet is None else self._fleet.transport_stats()
            ),
        }

    # ------------------------------------------------------------------
    # Fleet pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_fleet(self):
        """The persistent fleet runner, created on first cohort call."""
        if self._fleet is None:
            from ..fleet.runner import FleetRunner

            self._fleet = FleetRunner(
                welch=self._system.welch,
                n_jobs=self.resolved.jobs,
                chunk_windows=self.resolved.chunk_windows,
                provider=self.resolved.provider,
                arena=self.config.arena,
                workers=self.resolved.workers,
                worker_timeout=self.resolved.worker_timeout,
                config=self.config,
            )
        return self._fleet

    def close(self) -> None:
        """Release the persistent fleet pool, if one was created."""
        fleet, self._fleet = self._fleet, None
        if fleet is not None:
            fleet.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
