"""QRS detection (Pan-Tompkins style) and RR extraction.

WBSN nodes already run a delineation algorithm whose output feeds the PSA
system (paper Section II); this module provides that stage so the library
can start from a raw ECG trace: bandpass -> derivative -> squaring ->
moving-window integration -> adaptive-threshold peak picking, then a
parabolic refinement of each R peak on the filtered trace.

Two detectors share that machinery:

* :class:`QrsDetector` — whole-record batch detection (the original
  shape: non-causal zero-phase filtering over the full trace, adaptive
  threshold seeded from the global candidate distribution);
* :class:`StreamingQrsDetector` — the incremental form the ingestion
  layer feeds ECG *frames*.  It processes the trace in fixed blocks
  with a margin of context on each side, so the beats it emits are a
  deterministic function of the block grid alone — **any** chunking of
  the same record (sample-by-sample or one shot) finalizes to
  bit-identical beat times.  Its one-shot run *is* the batch reference
  for the streaming pipeline (``detect_record``); it deliberately does
  not reproduce :class:`QrsDetector` bit-for-bit, because zero-phase
  filtering and globally-seeded thresholds are whole-record quantities
  no bounded-latency detector can know.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sps

from .._validation import as_1d_float_array, require_positive
from ..errors import SignalError
from ..hrv.rr import RRSeries

__all__ = ["QrsDetector", "QrsResult", "StreamingQrsDetector"]


@dataclass(frozen=True)
class QrsResult:
    """Detected beats.

    Attributes
    ----------
    beat_times:
        R-peak instants in seconds.
    rr:
        The RR series derived from them.
    threshold_trace:
        Final adaptive threshold per detected peak (diagnostic).
    """

    beat_times: np.ndarray
    rr: RRSeries
    threshold_trace: np.ndarray


class QrsDetector:
    """Pan-Tompkins-style QRS detector.

    Parameters
    ----------
    sampling_rate:
        ECG sampling rate in Hz (>= 100 for reliable QRS morphology).
    band:
        Passband (Hz) isolating QRS energy; default (5, 15).
    integration_window:
        Moving-integration window length in seconds.
    refractory:
        Minimum spacing between beats in seconds.
    """

    def __init__(
        self,
        sampling_rate: float = 250.0,
        band: tuple[float, float] = (5.0, 15.0),
        integration_window: float = 0.12,
        refractory: float = 0.25,
    ):
        self.fs = require_positive(sampling_rate, "sampling_rate")
        if self.fs < 100.0:
            raise SignalError(
                f"sampling_rate {sampling_rate} too low for QRS detection"
            )
        low, high = band
        if not 0 < low < high < self.fs / 2:
            raise SignalError(f"invalid band {band} for fs={sampling_rate}")
        self.band = (float(low), float(high))
        self.integration_window = require_positive(
            integration_window, "integration_window"
        )
        self.refractory = require_positive(refractory, "refractory")
        nyq = self.fs / 2.0
        self._sos = sps.butter(
            2, [self.band[0] / nyq, self.band[1] / nyq], btype="band", output="sos"
        )

    # ------------------------------------------------------------------

    def _feature_signal(self, ecg: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        filtered = sps.sosfiltfilt(self._sos, ecg)
        derivative = np.gradient(filtered) * self.fs
        squared = derivative**2
        window = max(int(self.integration_window * self.fs), 1)
        kernel = np.ones(window) / window
        integrated = np.convolve(squared, kernel, mode="same")
        return filtered, integrated

    def detect(self, times, ecg) -> QrsResult:
        """Detect beats in an ECG trace.

        Parameters
        ----------
        times:
            Sample instants in seconds (uniform grid).
        ecg:
            ECG samples in millivolts.
        """
        t = as_1d_float_array(times, "times", min_length=32)
        x = as_1d_float_array(ecg, "ecg", min_length=32)
        if t.size != x.size:
            raise SignalError(
                f"times and ecg must match, got {t.size} and {x.size}"
            )
        filtered, feature = self._feature_signal(x)

        refractory_samples = int(self.refractory * self.fs)
        candidates, _ = sps.find_peaks(feature, distance=max(refractory_samples, 1))
        if candidates.size < 3:
            raise SignalError("fewer than 3 QRS candidates found")

        # Adaptive threshold: running estimates of signal and noise peaks.
        spki = float(np.percentile(feature[candidates], 75))
        npki = float(np.percentile(feature[candidates], 25))
        beats: list[int] = []
        thresholds: list[float] = []
        for idx in candidates:
            threshold = npki + 0.25 * (spki - npki)
            if feature[idx] >= threshold:
                beats.append(int(idx))
                spki = 0.125 * feature[idx] + 0.875 * spki
            else:
                npki = 0.125 * feature[idx] + 0.875 * npki
            thresholds.append(threshold)
        if len(beats) < 3:
            raise SignalError("fewer than 3 beats passed the adaptive threshold")

        refined = self._refine_peaks(filtered, np.asarray(beats))
        beat_times = t[0] + refined / self.fs
        return QrsResult(
            beat_times=beat_times,
            rr=RRSeries.from_beat_times(beat_times),
            threshold_trace=np.asarray(thresholds),
        )

    def _refine_peaks(self, filtered: np.ndarray, beats: np.ndarray) -> np.ndarray:
        """Sub-sample peak localisation by parabolic interpolation."""
        half = int(0.05 * self.fs)
        refined = np.empty(beats.size, dtype=np.float64)
        for i, b in enumerate(beats):
            lo, hi = max(b - half, 0), min(b + half + 1, filtered.size)
            local = np.abs(filtered[lo:hi])
            peak = lo + int(np.argmax(local))
            if 0 < peak < filtered.size - 1:
                y0, y1, y2 = (
                    abs(filtered[peak - 1]),
                    abs(filtered[peak]),
                    abs(filtered[peak + 1]),
                )
                denom = y0 - 2 * y1 + y2
                shift = 0.5 * (y0 - y2) / denom if abs(denom) > 1e-12 else 0.0
                refined[i] = peak + float(np.clip(shift, -0.5, 0.5))
            else:
                refined[i] = float(peak)
        return refined


class StreamingQrsDetector:
    """Incremental QRS detection over ECG frames, chunking-invariant.

    The trace is partitioned into fixed *blocks* of ``block_seconds``;
    block *b* is analysed the moment ``margin_seconds`` of samples
    beyond its right edge have arrived, over the context window
    ``[b*B - M, (b+1)*B + M)``.  Filtering, peak picking and parabolic
    refinement run on that context exactly as in
    :meth:`QrsDetector._feature_signal` / ``_refine_peaks``; only
    candidates *inside* the block are kept, the adaptive ``SPKI`` /
    ``NPKI`` estimates carry across blocks (seeded from the first block
    that produces candidates), and a cross-block refractory guard
    rejects a candidate closer than ``refractory`` to the previously
    accepted beat.

    Because the block grid is fixed by the detector — never by how the
    caller happens to slice the frames — every chunking of the same
    record produces bit-identical beat times.  :meth:`detect_record` is
    therefore the batch reference the streaming-vs-batch bit-identity
    tests compare against.

    Parameters mirror :class:`QrsDetector`, plus the block geometry.
    ``margin_seconds`` must cover the refractory period, the
    integration window and the refinement half-window, so no interior
    candidate's context is ever truncated mid-record.
    """

    #: Half-window (seconds) of the parabolic refinement in
    #: :meth:`QrsDetector._refine_peaks`.
    _REFINE_HALF_SECONDS = 0.05

    #: Tolerance (in sample periods) for frames to count as continuing
    #: the uniform grid the detector was opened on.
    _GRID_TOLERANCE = 0.25

    def __init__(
        self,
        sampling_rate: float = 250.0,
        band: tuple[float, float] = (5.0, 15.0),
        integration_window: float = 0.12,
        refractory: float = 0.25,
        block_seconds: float = 8.0,
        margin_seconds: float = 1.0,
    ):
        self._batch = QrsDetector(
            sampling_rate=sampling_rate,
            band=band,
            integration_window=integration_window,
            refractory=refractory,
        )
        self.fs = self._batch.fs
        self.band = self._batch.band
        self.integration_window = self._batch.integration_window
        self.refractory = self._batch.refractory
        require_positive(block_seconds, "block_seconds")
        require_positive(margin_seconds, "margin_seconds")
        needed = max(
            self.refractory,
            self.integration_window,
            self._REFINE_HALF_SECONDS,
        )
        if margin_seconds < needed:
            raise SignalError(
                f"margin_seconds {margin_seconds} must be >= {needed} "
                "(refractory / integration / refinement context)"
            )
        self.block_seconds = float(block_seconds)
        self.margin_seconds = float(margin_seconds)
        self._block = max(int(self.block_seconds * self.fs), 1)
        self._margin = max(int(self.margin_seconds * self.fs), 1)
        self._refractory_samples = max(int(self.refractory * self.fs), 1)

        self._buffer = np.empty(0, dtype=np.float64)
        self._offset = 0  # absolute sample index of self._buffer[0]
        self._count = 0  # total samples ingested
        self._t0: float | None = None  # instant of sample 0
        self._next_block = 0
        self._spki: float | None = None
        self._npki: float | None = None
        self._last_beat = -(1 << 60)  # absolute index of last accepted beat
        self._n_beats = 0
        self._finalized = False

    @property
    def n_beats(self) -> int:
        """Beats emitted so far."""
        return self._n_beats

    def _clone(self) -> "StreamingQrsDetector":
        return StreamingQrsDetector(
            sampling_rate=self.fs,
            band=self.band,
            integration_window=self.integration_window,
            refractory=self.refractory,
            block_seconds=self.block_seconds,
            margin_seconds=self.margin_seconds,
        )

    # ------------------------------------------------------------------

    def _process_block(self, block: int) -> list[float]:
        """Detect beats inside one block; return their instants."""
        lo = block * self._block
        hi = min((block + 1) * self._block, self._count)
        ctx_lo = max(0, lo - self._margin)
        ctx_hi = min(self._count, hi + self._margin)
        context = self._buffer[ctx_lo - self._offset : ctx_hi - self._offset]
        if context.size < 2:
            return []
        filtered, feature = self._batch._feature_signal(context)
        candidates, _ = sps.find_peaks(
            feature, distance=self._refractory_samples
        )
        interior = candidates[
            (candidates >= lo - ctx_lo) & (candidates < hi - ctx_lo)
        ]
        if interior.size == 0:
            return []
        if self._spki is None:
            self._spki = float(np.percentile(feature[interior], 75))
            self._npki = float(np.percentile(feature[interior], 25))
        accepted: list[int] = []
        for idx in interior:
            threshold = self._npki + 0.25 * (self._spki - self._npki)
            absolute = ctx_lo + int(idx)
            if (
                feature[idx] >= threshold
                and absolute - self._last_beat >= self._refractory_samples
            ):
                accepted.append(int(idx))
                self._last_beat = absolute
                self._spki = 0.125 * feature[idx] + 0.875 * self._spki
            else:
                self._npki = 0.125 * feature[idx] + 0.875 * self._npki
        if not accepted:
            return []
        refined = self._batch._refine_peaks(
            filtered, np.asarray(accepted, dtype=np.int64)
        )
        self._n_beats += refined.size
        return [
            self._t0 + (ctx_lo + float(r)) / self.fs for r in refined
        ]

    def _drain(self, final: bool) -> np.ndarray:
        beats: list[float] = []
        while True:
            block_end = (self._next_block + 1) * self._block
            if final:
                if self._next_block * self._block >= self._count:
                    break
            elif block_end + self._margin > self._count:
                break
            beats.extend(self._process_block(self._next_block))
            self._next_block += 1
            # Retire samples the next block's left margin cannot reach.
            keep_from = max(0, self._next_block * self._block - self._margin)
            if keep_from > self._offset:
                self._buffer = self._buffer[keep_from - self._offset :]
                self._offset = keep_from
        return np.asarray(beats, dtype=np.float64)

    def push(self, times, ecg) -> np.ndarray:
        """Ingest one ECG frame; return newly finalized beat instants.

        Frames must continue the uniform sample grid the first frame
        established (``times[k] = t0 + k / fs``) — gaps or resampling
        would silently shift every downstream RR interval.
        """
        if self._finalized:
            raise SignalError("detector already finalized")
        t = np.asarray(times, dtype=np.float64)
        x = np.asarray(ecg, dtype=np.float64)
        if t.ndim != 1 or x.ndim != 1 or t.size != x.size:
            raise SignalError(
                f"push needs matching 1-D times and ecg, got shapes "
                f"{t.shape} and {x.shape}"
            )
        if t.size == 0:
            return np.empty(0, dtype=np.float64)
        if self._t0 is None:
            self._t0 = float(t[0])
        expected = self._t0 + (
            self._count + np.arange(t.size, dtype=np.float64)
        ) / self.fs
        if np.max(np.abs(t - expected)) > self._GRID_TOLERANCE / self.fs:
            raise SignalError(
                "ECG frame does not continue the uniform sample grid "
                f"(fs={self.fs} Hz) the stream started on"
            )
        self._buffer = np.concatenate([self._buffer, x])
        self._count += x.size
        return self._drain(final=False)

    def finalize(self) -> np.ndarray:
        """Process the trailing partial blocks; return the last beats.

        Raises :class:`SignalError` when the whole stream produced
        fewer than 3 beats — the same floor batch detection enforces.
        """
        if self._finalized:
            raise SignalError("detector already finalized")
        self._finalized = True
        if self._count < 32:
            raise SignalError(
                f"ECG stream of {self._count} samples is too short for "
                "QRS detection"
            )
        beats = self._drain(final=True)
        if self._n_beats < 3:
            raise SignalError("fewer than 3 beats detected in ECG stream")
        return beats

    def detect_record(self, times, ecg) -> np.ndarray:
        """One-shot detection over a whole record (fresh state).

        Runs a pristine clone of this detector over the record in a
        single push — the batch reference that any frame-by-frame
        replay of the same record must match bit for bit.
        """
        clone = self._clone()
        head = clone.push(times, ecg)
        tail = clone.finalize()
        return np.concatenate([head, tail])
