"""QRS detection (Pan-Tompkins style) and RR extraction.

WBSN nodes already run a delineation algorithm whose output feeds the PSA
system (paper Section II); this module provides that stage so the library
can start from a raw ECG trace: bandpass -> derivative -> squaring ->
moving-window integration -> adaptive-threshold peak picking, then a
parabolic refinement of each R peak on the filtered trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as sps

from .._validation import as_1d_float_array, require_positive
from ..errors import SignalError
from ..hrv.rr import RRSeries

__all__ = ["QrsDetector", "QrsResult"]


@dataclass(frozen=True)
class QrsResult:
    """Detected beats.

    Attributes
    ----------
    beat_times:
        R-peak instants in seconds.
    rr:
        The RR series derived from them.
    threshold_trace:
        Final adaptive threshold per detected peak (diagnostic).
    """

    beat_times: np.ndarray
    rr: RRSeries
    threshold_trace: np.ndarray


class QrsDetector:
    """Pan-Tompkins-style QRS detector.

    Parameters
    ----------
    sampling_rate:
        ECG sampling rate in Hz (>= 100 for reliable QRS morphology).
    band:
        Passband (Hz) isolating QRS energy; default (5, 15).
    integration_window:
        Moving-integration window length in seconds.
    refractory:
        Minimum spacing between beats in seconds.
    """

    def __init__(
        self,
        sampling_rate: float = 250.0,
        band: tuple[float, float] = (5.0, 15.0),
        integration_window: float = 0.12,
        refractory: float = 0.25,
    ):
        self.fs = require_positive(sampling_rate, "sampling_rate")
        if self.fs < 100.0:
            raise SignalError(
                f"sampling_rate {sampling_rate} too low for QRS detection"
            )
        low, high = band
        if not 0 < low < high < self.fs / 2:
            raise SignalError(f"invalid band {band} for fs={sampling_rate}")
        self.band = (float(low), float(high))
        self.integration_window = require_positive(
            integration_window, "integration_window"
        )
        self.refractory = require_positive(refractory, "refractory")
        nyq = self.fs / 2.0
        self._sos = sps.butter(
            2, [self.band[0] / nyq, self.band[1] / nyq], btype="band", output="sos"
        )

    # ------------------------------------------------------------------

    def _feature_signal(self, ecg: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        filtered = sps.sosfiltfilt(self._sos, ecg)
        derivative = np.gradient(filtered) * self.fs
        squared = derivative**2
        window = max(int(self.integration_window * self.fs), 1)
        kernel = np.ones(window) / window
        integrated = np.convolve(squared, kernel, mode="same")
        return filtered, integrated

    def detect(self, times, ecg) -> QrsResult:
        """Detect beats in an ECG trace.

        Parameters
        ----------
        times:
            Sample instants in seconds (uniform grid).
        ecg:
            ECG samples in millivolts.
        """
        t = as_1d_float_array(times, "times", min_length=32)
        x = as_1d_float_array(ecg, "ecg", min_length=32)
        if t.size != x.size:
            raise SignalError(
                f"times and ecg must match, got {t.size} and {x.size}"
            )
        filtered, feature = self._feature_signal(x)

        refractory_samples = int(self.refractory * self.fs)
        candidates, _ = sps.find_peaks(feature, distance=max(refractory_samples, 1))
        if candidates.size < 3:
            raise SignalError("fewer than 3 QRS candidates found")

        # Adaptive threshold: running estimates of signal and noise peaks.
        spki = float(np.percentile(feature[candidates], 75))
        npki = float(np.percentile(feature[candidates], 25))
        beats: list[int] = []
        thresholds: list[float] = []
        for idx in candidates:
            threshold = npki + 0.25 * (spki - npki)
            if feature[idx] >= threshold:
                beats.append(int(idx))
                spki = 0.125 * feature[idx] + 0.875 * spki
            else:
                npki = 0.125 * feature[idx] + 0.875 * npki
            thresholds.append(threshold)
        if len(beats) < 3:
            raise SignalError("fewer than 3 beats passed the adaptive threshold")

        refined = self._refine_peaks(filtered, np.asarray(beats))
        beat_times = t[0] + refined / self.fs
        return QrsResult(
            beat_times=beat_times,
            rr=RRSeries.from_beat_times(beat_times),
            threshold_trace=np.asarray(thresholds),
        )

    def _refine_peaks(self, filtered: np.ndarray, beats: np.ndarray) -> np.ndarray:
        """Sub-sample peak localisation by parabolic interpolation."""
        half = int(0.05 * self.fs)
        refined = np.empty(beats.size, dtype=np.float64)
        for i, b in enumerate(beats):
            lo, hi = max(b - half, 0), min(b + half + 1, filtered.size)
            local = np.abs(filtered[lo:hi])
            peak = lo + int(np.argmax(local))
            if 0 < peak < filtered.size - 1:
                y0, y1, y2 = (
                    abs(filtered[peak - 1]),
                    abs(filtered[peak]),
                    abs(filtered[peak + 1]),
                )
                denom = y0 - 2 * y1 + y2
                shift = 0.5 * (y0 - y2) / denom if abs(denom) > 1e-12 else 0.0
                refined[i] = peak + float(np.clip(shift, -0.5, 0.5))
            else:
                refined[i] = float(peak)
        return refined
