"""Synthetic RR-tachogram generation.

Substitution for the MIT-BIH / PhysioNet recordings the paper uses
(DESIGN.md, Section 2): the PSA algorithms only consume RR-interval
series, so we synthesise tachograms with the spectral structure that
drives the paper's metric — a sympathetic LF oscillation (~0.1 Hz), a
respiratory HF oscillation (respiratory sinus arrhythmia, RSA), slow
VLF/ULF drift and broadband jitter — with known ground truth.

Beat times follow the integral pulse frequency modulation (IPFM) view:
the next beat occurs one instantaneous RR after the previous one, with
the modulators evaluated on the continuous time axis.  Optional ectopic
beats (early beat + compensatory pause) exercise the artifact pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .._validation import require_in_range, require_positive
from ..errors import ConfigurationError, SignalError
from ..hrv.rr import RRSeries

__all__ = ["TachogramSpec", "generate_tachogram"]


@dataclass(frozen=True)
class TachogramSpec:
    """Parameters of one synthetic tachogram.

    Attributes
    ----------
    mean_rr:
        Baseline RR interval in seconds.
    lf_amplitude, lf_frequency:
        Amplitude (s) and frequency (Hz) of the low-frequency oscillation.
    hf_amplitude, hf_frequency:
        Amplitude (s) and frequency (Hz) of the respiratory oscillation.
    drift_amplitude:
        Amplitude (s) of the slow VLF drift components.
    jitter:
        Standard deviation (s) of white beat-to-beat noise.
    ectopic_rate:
        Probability per beat of injecting an ectopic pair (early beat
        followed by a compensatory pause).
    seed:
        Seed for the deterministic random stream (phases, jitter,
        ectopics).
    """

    mean_rr: float = 0.85
    lf_amplitude: float = 0.03
    lf_frequency: float = 0.095
    hf_amplitude: float = 0.03
    hf_frequency: float = 0.25
    drift_amplitude: float = 0.015
    jitter: float = 0.004
    ectopic_rate: float = 0.0
    seed: int = 0

    def __post_init__(self):
        require_in_range(self.mean_rr, 0.3, 2.0, "mean_rr")
        require_in_range(self.lf_frequency, 0.04, 0.15, "lf_frequency")
        require_in_range(self.hf_frequency, 0.15, 0.4, "hf_frequency")
        for name in ("lf_amplitude", "hf_amplitude", "drift_amplitude", "jitter"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
        require_in_range(self.ectopic_rate, 0.0, 0.2, "ectopic_rate")
        total_mod = (
            self.lf_amplitude + self.hf_amplitude + self.drift_amplitude
        )
        if total_mod >= 0.5 * self.mean_rr:
            raise ConfigurationError(
                "modulation amplitudes too large relative to mean RR; "
                "intervals could become non-positive"
            )

    @property
    def expected_lf_hf_ratio(self) -> float:
        """Ground-truth LF/HF power ratio of the sinusoidal modulators."""
        if self.hf_amplitude == 0:
            raise ConfigurationError("hf_amplitude is zero; ratio undefined")
        return (self.lf_amplitude / self.hf_amplitude) ** 2

    def with_seed(self, seed: int) -> "TachogramSpec":
        """Copy of the spec with a different random seed."""
        return replace(self, seed=int(seed))


#: Frequencies (Hz) and relative amplitudes of the VLF drift components.
_DRIFT_COMPONENTS = ((0.0055, 1.0), (0.013, 0.7), (0.028, 0.5))


def generate_tachogram(spec: TachogramSpec, duration: float) -> RRSeries:
    """Generate *duration* seconds of beats according to *spec*."""
    require_positive(duration, "duration")
    if duration < 10.0 * spec.mean_rr:
        raise SignalError(
            f"duration {duration} s too short for a meaningful tachogram"
        )
    rng = np.random.default_rng(spec.seed)
    lf_phase = rng.uniform(0, 2 * np.pi)
    hf_phase = rng.uniform(0, 2 * np.pi)
    drift_phases = rng.uniform(0, 2 * np.pi, size=len(_DRIFT_COMPONENTS))

    max_beats = int(np.ceil(duration / (0.5 * spec.mean_rr))) + 4
    times = np.empty(max_beats)
    intervals = np.empty(max_beats)
    t = 0.0
    count = 0
    pending_pause = 0.0
    while count < max_beats:
        rr = (
            spec.mean_rr
            + spec.lf_amplitude * np.sin(2 * np.pi * spec.lf_frequency * t + lf_phase)
            + spec.hf_amplitude * np.sin(2 * np.pi * spec.hf_frequency * t + hf_phase)
        )
        for (freq, rel), phase in zip(_DRIFT_COMPONENTS, drift_phases):
            rr += spec.drift_amplitude * rel * np.sin(2 * np.pi * freq * t + phase)
        if spec.jitter > 0:
            rr += spec.jitter * rng.standard_normal()
        if pending_pause > 0.0:
            rr += pending_pause
            pending_pause = 0.0
        elif spec.ectopic_rate > 0 and rng.random() < spec.ectopic_rate:
            shortening = 0.35 * rr
            rr -= shortening
            pending_pause = shortening  # compensatory pause on the next beat
        rr = max(rr, 0.25)
        t += rr
        if t > duration:
            break
        times[count] = t
        intervals[count] = rr
        count += 1
    if count < 4:
        raise SignalError("generated fewer than 4 beats; check parameters")
    return RRSeries(times=times[:count].copy(), intervals=intervals[:count].copy())
