"""Synthetic patient cohort — stand-in for the PhysioNet recordings.

The paper evaluates on "numerous sinus-arrhythmia and healthy samples
from PhysioNet [17]" and quotes cohort statistics over 16 patients.  This
module builds a deterministic synthetic cohort with the same clinically
relevant structure: respiratory-sinus-arrhythmia (RSA) records whose HF
oscillation dominates (LF/HF well below 1) and healthy controls whose LF
power dominates (LF/HF above 1).  Per-patient parameters are drawn from
condition-specific distributions with a fixed master seed, so every
experiment in the repository sees the same "patients".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .._validation import require_positive
from ..errors import ConfigurationError
from ..hrv.rr import RRSeries
from .rr_synthesis import TachogramSpec, generate_tachogram

__all__ = ["Condition", "PatientRecord", "SyntheticCohort", "make_cohort"]


class Condition(enum.Enum):
    """Clinical label of a synthetic record."""

    SINUS_ARRHYTHMIA = "sinus-arrhythmia"
    HEALTHY = "healthy"


@dataclass(frozen=True)
class PatientRecord:
    """One synthetic patient.

    Attributes
    ----------
    patient_id:
        Stable identifier, e.g. ``"rsa-03"``.
    condition:
        Ground-truth label.
    spec:
        Tachogram generator parameters for this patient.
    """

    patient_id: str
    condition: Condition
    spec: TachogramSpec

    def rr_series(self, duration: float = 600.0) -> RRSeries:
        """Generate this patient's RR series for the given duration."""
        return generate_tachogram(self.spec, duration)


def _rsa_spec(rng: np.random.Generator, seed: int) -> TachogramSpec:
    """Respiratory sinus arrhythmia: dominant HF oscillation.

    Amplitude distributions are calibrated so the conventional Welch-Lomb
    pipeline measures a cohort-average LF/HF ratio near the paper's 0.45
    (Table I) while every record stays clearly below the detection
    threshold of 1.
    """
    return TachogramSpec(
        mean_rr=float(rng.uniform(0.75, 1.0)),
        lf_amplitude=float(rng.uniform(0.030, 0.044)),
        lf_frequency=float(rng.uniform(0.08, 0.11)),
        hf_amplitude=float(rng.uniform(0.045, 0.065)),
        hf_frequency=float(rng.uniform(0.21, 0.32)),
        drift_amplitude=float(rng.uniform(0.006, 0.012)),
        jitter=float(rng.uniform(0.002, 0.004)),
        seed=seed,
    )


def _healthy_spec(rng: np.random.Generator, seed: int) -> TachogramSpec:
    """Healthy control: LF-dominated spectrum (LF/HF ratio ~ 2-3)."""
    return TachogramSpec(
        mean_rr=float(rng.uniform(0.7, 0.95)),
        lf_amplitude=float(rng.uniform(0.028, 0.042)),
        lf_frequency=float(rng.uniform(0.08, 0.12)),
        hf_amplitude=float(rng.uniform(0.018, 0.028)),
        hf_frequency=float(rng.uniform(0.22, 0.34)),
        drift_amplitude=float(rng.uniform(0.008, 0.014)),
        jitter=float(rng.uniform(0.002, 0.004)),
        seed=seed,
    )


@dataclass(frozen=True)
class SyntheticCohort:
    """A fixed collection of synthetic patients."""

    patients: tuple[PatientRecord, ...]

    def __post_init__(self):
        if not self.patients:
            raise ConfigurationError("cohort is empty")
        ids = [p.patient_id for p in self.patients]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate patient ids in cohort")

    def __len__(self) -> int:
        return len(self.patients)

    def __iter__(self):
        return iter(self.patients)

    def by_condition(self, condition: Condition) -> tuple[PatientRecord, ...]:
        """All patients with the given ground-truth label."""
        return tuple(p for p in self.patients if p.condition is condition)

    def get(self, patient_id: str) -> PatientRecord:
        """Look a patient up by id."""
        for patient in self.patients:
            if patient.patient_id == patient_id:
                return patient
        raise ConfigurationError(f"no patient {patient_id!r} in cohort")


def make_cohort(
    n_arrhythmia: int = 16,
    n_healthy: int = 8,
    seed: int = 2014,
) -> SyntheticCohort:
    """Build the standard evaluation cohort.

    Defaults mirror the paper's evaluation scale: 16 sinus-arrhythmia
    records (the cohort behind Table I and the 4.9 % average-error
    figure) plus healthy controls for the detection experiments.
    """
    if n_arrhythmia < 0 or n_healthy < 0 or n_arrhythmia + n_healthy == 0:
        raise ConfigurationError("cohort needs at least one patient")
    require_positive(seed + 1, "seed")  # seeds must be non-negative ints
    rng = np.random.default_rng(seed)
    patients: list[PatientRecord] = []
    for i in range(n_arrhythmia):
        spec = _rsa_spec(rng, seed=seed * 1000 + i)
        patients.append(
            PatientRecord(
                patient_id=f"rsa-{i:02d}",
                condition=Condition.SINUS_ARRHYTHMIA,
                spec=spec,
            )
        )
    for i in range(n_healthy):
        spec = _healthy_spec(rng, seed=seed * 1000 + 500 + i)
        patients.append(
            PatientRecord(
                patient_id=f"ctl-{i:02d}",
                condition=Condition.HEALTHY,
                spec=spec,
            )
        )
    return SyntheticCohort(patients=tuple(patients))
