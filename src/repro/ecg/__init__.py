"""ECG/data substrate: synthetic tachograms, ECG waveforms, QRS, cohort.

Substitutes for the paper's PhysioNet recordings (see DESIGN.md): RR
tachogram generation with calibrated LF/HF structure, McSharry-style ECG
rendering, Pan-Tompkins-style QRS detection (closing the full Fig. 1(a)
input path) and the deterministic synthetic patient cohort used by every
experiment.
"""

from .database import Condition, PatientRecord, SyntheticCohort, make_cohort
from .ecg_synthesis import EcgMorphology, synthesize_ecg
from .qrs import QrsDetector, QrsResult, StreamingQrsDetector
from .rr_synthesis import TachogramSpec, generate_tachogram

__all__ = [
    "Condition",
    "EcgMorphology",
    "PatientRecord",
    "QrsDetector",
    "QrsResult",
    "StreamingQrsDetector",
    "SyntheticCohort",
    "TachogramSpec",
    "generate_tachogram",
    "make_cohort",
    "synthesize_ecg",
]
