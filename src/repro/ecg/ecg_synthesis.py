"""Synthetic single-lead ECG waveform generation.

Renders an ECG trace from a beat-time sequence by placing parameterised
Gaussian P-QRS-T components around each beat, in the spirit of the
McSharry dynamical model.  Together with the QRS detector in
:mod:`repro.ecg.qrs` this closes the paper's full input path — continuous
ECG -> delineation -> RR intervals -> PSA (Fig. 1a) — without requiring
the proprietary recordings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array, require_positive
from ..errors import SignalError

__all__ = ["EcgMorphology", "synthesize_ecg"]


@dataclass(frozen=True)
class EcgMorphology:
    """Gaussian component layout of one beat.

    Each wave is ``amplitude * exp(-0.5 ((t - offset)/width)^2)`` with the
    offset expressed as a fraction of the current RR interval relative to
    the R peak.  Defaults give a plausible lead-II morphology.
    """

    p_amplitude: float = 0.12
    p_offset: float = -0.22
    p_width: float = 0.025
    q_amplitude: float = -0.1
    q_offset: float = -0.035
    q_width: float = 0.008
    r_amplitude: float = 1.0
    r_offset: float = 0.0
    r_width: float = 0.011
    s_amplitude: float = -0.18
    s_offset: float = 0.035
    s_width: float = 0.009
    t_amplitude: float = 0.28
    t_offset: float = 0.31
    t_width: float = 0.055

    def waves(self) -> tuple[tuple[float, float, float], ...]:
        """(amplitude, offset_fraction, width_seconds) per wave."""
        return (
            (self.p_amplitude, self.p_offset, self.p_width),
            (self.q_amplitude, self.q_offset, self.q_width),
            (self.r_amplitude, self.r_offset, self.r_width),
            (self.s_amplitude, self.s_offset, self.s_width),
            (self.t_amplitude, self.t_offset, self.t_width),
        )


def synthesize_ecg(
    beat_times,
    sampling_rate: float = 250.0,
    morphology: EcgMorphology | None = None,
    noise_std: float = 0.01,
    baseline_wander: float = 0.05,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Render an ECG trace containing the given R-peak instants.

    Parameters
    ----------
    beat_times:
        R-peak instants in seconds (strictly increasing, >= 3 beats).
    sampling_rate:
        Output sampling rate in Hz.
    morphology:
        Beat shape; defaults to :class:`EcgMorphology`.
    noise_std:
        White measurement-noise standard deviation (mV).
    baseline_wander:
        Amplitude (mV) of the respiratory baseline wander.
    seed:
        Random seed for noise.

    Returns
    -------
    (t, ecg):
        Sample instants and the synthetic trace in millivolts.
    """
    beats = as_1d_float_array(beat_times, "beat_times", min_length=3)
    if np.any(np.diff(beats) <= 0):
        raise SignalError("beat_times must be strictly increasing")
    require_positive(sampling_rate, "sampling_rate")
    if morphology is None:
        morphology = EcgMorphology()

    rng = np.random.default_rng(seed)
    t_start = beats[0] - 0.5
    t_stop = beats[-1] + 0.8
    n = int(np.ceil((t_stop - t_start) * sampling_rate))
    t = t_start + np.arange(n) / sampling_rate
    ecg = np.zeros(n)

    rr_local = np.diff(beats)
    rr_local = np.concatenate([[rr_local[0]], rr_local])
    for beat, rr in zip(beats, rr_local):
        for amplitude, offset_fraction, width in morphology.waves():
            center = beat + offset_fraction * rr
            lo = int((center - 5 * width - t_start) * sampling_rate)
            hi = int((center + 5 * width - t_start) * sampling_rate) + 1
            lo, hi = max(lo, 0), min(hi, n)
            if hi <= lo:
                continue
            window = t[lo:hi]
            ecg[lo:hi] += amplitude * np.exp(
                -0.5 * ((window - center) / width) ** 2
            )
    if baseline_wander > 0:
        ecg += baseline_wander * np.sin(2 * np.pi * 0.25 * t + rng.uniform(0, 2 * np.pi))
    if noise_std > 0:
        ecg += noise_std * rng.standard_normal(n)
    return t, ecg
