"""Bit-accurate fixed-point versions of the transform kernels.

Emulates the integer datapath of the sensor node end to end: a
fixed-point periodic DWT level, an iterative radix-2 FFT with per-stage
scaling (the standard overflow strategy: every butterfly stage shifts
right by one, so the result carries a known power-of-two scale), and the
full fixed-point wavelet FFT with quantised twiddle factors and optional
pruning.  All intermediate values stay in the integer domain; the known
power-of-two scale is compensated only once, at the final dequantisation
— exactly how a real integer kernel chains its stages.

Used by the quantisation ablation: does the paper's pruning conclusion
survive a Q15 datapath?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_complex_array, require_power_of_two
from ..errors import FixedPointError
from ..ffts.pruning import PruningSpec, static_twiddle_mask
from ..ffts.radix2 import bit_reverse_permutation
from ..wavelets.filters import WaveletFilter, get_filter
from ..wavelets.freq import twiddle_pair
from .arithmetic import ComplexFixed, FixedPointContext, complex_add, complex_multiply
from .qformat import Q15, QFormat

__all__ = [
    "FixedPointResult",
    "fixed_point_dwt_level",
    "fixed_point_fft",
    "FixedPointWaveletFFT",
    "sqnr_db",
]


@dataclass(frozen=True)
class FixedPointResult:
    """Dequantised result of a fixed-point kernel run.

    Attributes
    ----------
    values:
        Result as complex (or real) floats, with the internal
        power-of-two scaling already compensated.
    scale_shift:
        log2 of the compensation factor that was applied.
    saturations:
        Saturation events during the run.
    operations:
        Total fixed-point results produced.
    """

    values: np.ndarray
    scale_shift: int
    saturations: int
    operations: int


def _resolve(basis) -> WaveletFilter:
    if isinstance(basis, WaveletFilter):
        return basis
    return get_filter(basis)


# ----------------------------------------------------------------------
# Raw integer-domain stages
# ----------------------------------------------------------------------


def _raw_dwt_level(
    data: np.ndarray, bank: WaveletFilter, ctx: FixedPointContext
) -> tuple[np.ndarray, np.ndarray]:
    """Integer DWT level; output carries an extra 1/2 scale.

    Filter taps are stored pre-scaled by 1/2 so the sqrt(2) analysis
    gain can never overflow the format.
    """
    fmt = ctx.fmt
    taps_lo = fmt.quantize(bank.lowpass / 2.0)
    taps_hi = fmt.quantize(bank.highpass / 2.0)
    half = data.size // 2
    lo = np.zeros(half, dtype=np.int64)
    hi = np.zeros(half, dtype=np.int64)
    for j in range(bank.length):
        picked = np.take(data, (2 * np.arange(half) + j) % data.size)
        lo = ctx.add(lo, ctx.multiply(taps_lo[j], picked))
        hi = ctx.add(hi, ctx.multiply(taps_hi[j], picked))
    return lo, hi


def _raw_fft(data: ComplexFixed, ctx: FixedPointContext) -> ComplexFixed:
    """Integer radix-2 FFT; output equals ``FFT(x) / N`` in fixed point.

    One right shift per stage keeps every butterfly inside the format
    regardless of input statistics (unity-headroom scaling).
    """
    fmt = ctx.fmt
    n = data.real.size
    require_power_of_two(n, "len(x)")
    perm = bit_reverse_permutation(n)
    current = ComplexFixed(real=data.real[perm], imag=data.imag[perm])
    span = 1
    while span < n:
        angles = -np.pi * np.arange(span) / span
        tw_re = fmt.quantize(np.cos(angles))
        tw_im = fmt.quantize(np.sin(angles))
        re = current.real.reshape(-1, 2 * span)
        im = current.imag.reshape(-1, 2 * span)
        upper = ComplexFixed(real=re[:, :span].copy(), imag=im[:, :span].copy())
        lower = ComplexFixed(real=re[:, span:].copy(), imag=im[:, span:].copy())
        factors = ComplexFixed(
            real=np.broadcast_to(tw_re, lower.real.shape).copy(),
            imag=np.broadcast_to(tw_im, lower.imag.shape).copy(),
        )
        twisted = complex_multiply(ctx, lower, factors)
        # Scale-before-add: halve both operands first so the butterfly
        # sum can never leave the format (unity-headroom scaling).
        u_re = ctx.shift_right(upper.real, 1)
        u_im = ctx.shift_right(upper.imag, 1)
        t_re = ctx.shift_right(twisted.real, 1)
        t_im = ctx.shift_right(twisted.imag, 1)
        new_re = np.hstack(
            [ctx.add(u_re, t_re), ctx.subtract(u_re, t_re)]
        ).reshape(-1)
        new_im = np.hstack(
            [ctx.add(u_im, t_im), ctx.subtract(u_im, t_im)]
        ).reshape(-1)
        current = ComplexFixed(real=new_re, imag=new_im)
        span *= 2
    return current


# ----------------------------------------------------------------------
# Public kernels
# ----------------------------------------------------------------------


def fixed_point_dwt_level(
    x, basis="haar", fmt: QFormat = Q15, rounding: str = "nearest"
) -> tuple[FixedPointResult, FixedPointResult]:
    """One periodic DWT level on the integer datapath.

    Returns lowpass and highpass results whose float values approximate
    :func:`repro.wavelets.dwt.dwt_level` (the internal 1/2 tap scaling
    is compensated).
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1 or arr.size % 2 != 0 or arr.size < 2:
        raise FixedPointError("input must be 1-D with even length >= 2")
    bank = _resolve(basis)
    ctx = FixedPointContext(fmt=fmt, rounding=rounding)
    lo, hi = _raw_dwt_level(fmt.quantize(arr), bank, ctx)
    make = lambda raw: FixedPointResult(  # noqa: E731 - tiny local helper
        values=fmt.to_float(raw) * 2.0,
        scale_shift=1,
        saturations=ctx.saturations,
        operations=ctx.operations,
    )
    return make(lo), make(hi)


def fixed_point_fft(
    x, fmt: QFormat = Q15, rounding: str = "nearest"
) -> FixedPointResult:
    """Radix-2 FFT on the integer datapath, comparable to ``numpy.fft``.

    Input magnitudes must fit the format (for Q15: |x| < 1).
    """
    arr = as_1d_complex_array(x, "x")
    n = require_power_of_two(arr.size, "len(x)")
    ctx = FixedPointContext(fmt=fmt, rounding=rounding)
    data = ComplexFixed.from_complex(arr, fmt)
    result = _raw_fft(data, ctx)
    return FixedPointResult(
        values=result.to_complex(fmt) * float(n),
        scale_shift=int(np.log2(n)),
        saturations=ctx.saturations,
        operations=ctx.operations,
    )


class FixedPointWaveletFFT:
    """Fixed-point DWT-based FFT with optional static pruning.

    Mirrors :class:`repro.ffts.wavelet_fft.WaveletFFT` (one wavelet
    stage, two half-length sub-FFTs, modified-twiddle butterflies) on the
    integer datapath.  Twiddle factors are quantised once at plan time —
    exactly what a node would store in ROM — and static pruning simply
    zeroes the pruned table entries.
    """

    def __init__(
        self,
        n: int,
        basis="haar",
        fmt: QFormat = Q15,
        pruning: PruningSpec | None = None,
        rounding: str = "nearest",
    ):
        self.n = require_power_of_two(n, "n")
        if self.n < 4:
            raise FixedPointError("FixedPointWaveletFFT needs n >= 4")
        self.bank = _resolve(basis)
        self.fmt = fmt
        self.rounding = rounding
        self.pruning = pruning or PruningSpec.none()
        if self.pruning.dynamic:
            raise FixedPointError(
                "dynamic pruning is not supported on the fixed-point path"
            )
        hl, hh = twiddle_pair(self.n, self.bank)
        keep_hl = np.ones(self.n, dtype=bool)
        keep_hh = (
            np.zeros(self.n, dtype=bool)
            if self.pruning.band_drop
            else np.ones(self.n, dtype=bool)
        )
        if self.pruning.twiddle_fraction > 0:
            if self.pruning.band_drop:
                keep_hl = static_twiddle_mask(
                    np.abs(hl), self.pruning.twiddle_fraction
                )
            else:
                keep = static_twiddle_mask(
                    np.concatenate([np.abs(hl), np.abs(hh)]),
                    self.pruning.twiddle_fraction,
                )
                keep_hl, keep_hh = keep[: self.n], keep[self.n :]
        # Twiddles reach |sqrt(2)|: stored halved (the extra factor of 2
        # is folded into the final dequantisation).
        self._hl_q = ComplexFixed(
            real=fmt.quantize(np.where(keep_hl, hl.real, 0.0) / 2.0),
            imag=fmt.quantize(np.where(keep_hl, hl.imag, 0.0) / 2.0),
        )
        self._hh_q = ComplexFixed(
            real=fmt.quantize(np.where(keep_hh, hh.real, 0.0) / 2.0),
            imag=fmt.quantize(np.where(keep_hh, hh.imag, 0.0) / 2.0),
        )
        self._hh_active = bool(np.any(keep_hh))

    def transform(self, x) -> FixedPointResult:
        """Run the integer transform; values are comparable to the float
        :class:`~repro.ffts.wavelet_fft.WaveletFFT` output."""
        arr = as_1d_complex_array(x, "x")
        if arr.size != self.n:
            raise FixedPointError(
                f"input length {arr.size} does not match plan size {self.n}"
            )
        ctx = FixedPointContext(fmt=self.fmt, rounding=self.rounding)
        re_q = self.fmt.quantize(arr.real)
        im_q = self.fmt.quantize(arr.imag)
        lo_re, hi_re = _raw_dwt_level(re_q, self.bank, ctx)
        lo_im, hi_im = _raw_dwt_level(im_q, self.bank, ctx)

        half = self.n // 2
        sub_lo = _raw_fft(ComplexFixed(real=lo_re, imag=lo_im), ctx)
        l_tiled = ComplexFixed(
            real=np.tile(sub_lo.real, 2), imag=np.tile(sub_lo.imag, 2)
        )
        out = complex_multiply(ctx, l_tiled, self._hl_q)
        if self._hh_active:
            sub_hi = _raw_fft(ComplexFixed(real=hi_re, imag=hi_im), ctx)
            h_tiled = ComplexFixed(
                real=np.tile(sub_hi.real, 2), imag=np.tile(sub_hi.imag, 2)
            )
            out = complex_add(ctx, out, complex_multiply(ctx, h_tiled, self._hh_q))
        # Accumulated scale: 1/2 (DWT taps) * 1/half (sub-FFT) * 1/2
        # (halved twiddles) = 1 / (2 * n).
        values = out.to_complex(self.fmt) * (2.0 * self.n)
        return FixedPointResult(
            values=values,
            scale_shift=int(np.log2(self.n)) + 1,
            saturations=ctx.saturations,
            operations=ctx.operations,
        )


def sqnr_db(reference, quantized) -> float:
    """Signal-to-quantisation-noise ratio in dB."""
    ref = np.asarray(reference, dtype=np.complex128)
    quant = np.asarray(quantized, dtype=np.complex128)
    if ref.shape != quant.shape:
        raise FixedPointError("shape mismatch between reference and quantized")
    signal = float(np.sum(np.abs(ref) ** 2))
    noise = float(np.sum(np.abs(ref - quant) ** 2))
    if noise == 0.0:
        return float("inf")
    if signal == 0.0:
        raise FixedPointError("reference signal is identically zero")
    return 10.0 * np.log10(signal / noise)
