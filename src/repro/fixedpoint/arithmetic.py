"""Saturating fixed-point arithmetic with overflow tracking.

Implements the integer datapath the node kernels would run on: additions
saturate at the format limits, multiplications compute a double-width
product and round it back to the format, and every saturation event is
tallied so experiments can report how often a configuration clips.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FixedPointError
from .qformat import QFormat

__all__ = ["FixedPointContext", "ComplexFixed"]


@dataclass
class FixedPointContext:
    """Arithmetic context: format, rounding and saturation statistics.

    Attributes
    ----------
    fmt:
        The :class:`QFormat` all operands and results live in.
    rounding:
        Product rounding mode, ``"nearest"`` or ``"truncate"``.
    saturations:
        Number of results clipped so far (mutable tally).
    operations:
        Number of arithmetic results produced so far.
    """

    fmt: QFormat
    rounding: str = "nearest"
    saturations: int = 0
    operations: int = 0

    def _saturate(self, raw: np.ndarray) -> np.ndarray:
        clipped = np.clip(raw, self.fmt.min_int, self.fmt.max_int)
        self.saturations += int(np.count_nonzero(clipped != raw))
        self.operations += int(np.asarray(raw).size)
        return clipped

    def add(self, a, b) -> np.ndarray:
        """Saturating addition of raw fixed-point arrays."""
        return self._saturate(np.asarray(a, np.int64) + np.asarray(b, np.int64))

    def subtract(self, a, b) -> np.ndarray:
        """Saturating subtraction of raw fixed-point arrays."""
        return self._saturate(np.asarray(a, np.int64) - np.asarray(b, np.int64))

    def multiply(self, a, b) -> np.ndarray:
        """Fixed-point multiply: double-width product, round, saturate."""
        wide = np.asarray(a, np.int64) * np.asarray(b, np.int64)
        shift = self.fmt.fraction_bits
        if self.rounding == "nearest":
            offset = 1 << (shift - 1)
            rounded = np.where(
                wide >= 0, (wide + offset) >> shift, -((-wide + offset) >> shift)
            )
        elif self.rounding == "truncate":
            rounded = wide >> shift
        else:
            raise FixedPointError(f"unknown rounding mode {self.rounding!r}")
        return self._saturate(rounded)

    def shift_right(self, a, bits: int) -> np.ndarray:
        """Arithmetic right shift with round-to-nearest (scaling stages)."""
        if bits < 0:
            raise FixedPointError(f"shift must be >= 0, got {bits}")
        if bits == 0:
            return np.asarray(a, np.int64).copy()
        raw = np.asarray(a, np.int64)
        offset = 1 << (bits - 1)
        return np.where(raw >= 0, (raw + offset) >> bits, -((-raw + offset) >> bits))

    @property
    def saturation_rate(self) -> float:
        """Fraction of results that clipped."""
        if self.operations == 0:
            return 0.0
        return self.saturations / self.operations


@dataclass
class ComplexFixed:
    """A complex vector in fixed point: separate real/imag raw arrays."""

    real: np.ndarray
    imag: np.ndarray

    def __post_init__(self):
        self.real = np.asarray(self.real, dtype=np.int64)
        self.imag = np.asarray(self.imag, dtype=np.int64)
        if self.real.shape != self.imag.shape:
            raise FixedPointError("real/imag shape mismatch")

    @classmethod
    def from_complex(cls, values, fmt: QFormat) -> "ComplexFixed":
        """Quantise a complex float array."""
        arr = np.asarray(values, dtype=np.complex128)
        return cls(real=fmt.quantize(arr.real), imag=fmt.quantize(arr.imag))

    def to_complex(self, fmt: QFormat) -> np.ndarray:
        """Dequantise back to complex128."""
        return fmt.to_float(self.real) + 1j * fmt.to_float(self.imag)

    def __len__(self) -> int:
        return int(self.real.size)


def complex_multiply(
    ctx: FixedPointContext, a: ComplexFixed, b: ComplexFixed
) -> ComplexFixed:
    """Fixed-point complex multiplication (4 mults + 2 adds)."""
    rr = ctx.multiply(a.real, b.real)
    ii = ctx.multiply(a.imag, b.imag)
    ri = ctx.multiply(a.real, b.imag)
    ir = ctx.multiply(a.imag, b.real)
    return ComplexFixed(real=ctx.subtract(rr, ii), imag=ctx.add(ri, ir))


def complex_add(
    ctx: FixedPointContext, a: ComplexFixed, b: ComplexFixed
) -> ComplexFixed:
    """Fixed-point complex addition."""
    return ComplexFixed(real=ctx.add(a.real, b.real), imag=ctx.add(a.imag, b.imag))


__all__ += ["complex_multiply", "complex_add"]
