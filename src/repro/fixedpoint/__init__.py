"""Fixed-point substrate: Q-format arithmetic and integer kernels.

Bit-accurate emulation of the sensor node's integer datapath: Q-format
quantisation with saturation/rounding, overflow-tracking arithmetic, and
fixed-point versions of the DWT, radix-2 FFT and pruned wavelet FFT used
for the quantisation ablation.
"""

from .arithmetic import (
    ComplexFixed,
    FixedPointContext,
    complex_add,
    complex_multiply,
)
from .kernels import (
    FixedPointResult,
    FixedPointWaveletFFT,
    fixed_point_dwt_level,
    fixed_point_fft,
    sqnr_db,
)
from .qformat import Q15, Q31, Q1_14, QFormat

__all__ = [
    "ComplexFixed",
    "FixedPointContext",
    "FixedPointResult",
    "FixedPointWaveletFFT",
    "Q15",
    "Q31",
    "Q1_14",
    "QFormat",
    "complex_add",
    "complex_multiply",
    "fixed_point_dwt_level",
    "fixed_point_fft",
    "sqnr_db",
]
