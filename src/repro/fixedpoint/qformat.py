"""Q-format fixed-point number representation.

The paper's kernels target an integer sensor-node datapath; this module
provides the bit-accurate representation used to emulate it: a signed
two's-complement Q(m, n) format with one sign bit, *m* integer bits and
*n* fractional bits, stored in int64 numpy arrays.

Quantisation supports round-to-nearest (ties away from zero, the usual
DSP rounding) and truncation; out-of-range values either saturate (the
hardware default) or raise, per the context configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FixedPointError

__all__ = ["QFormat", "Q15", "Q31", "Q1_14"]


@dataclass(frozen=True)
class QFormat:
    """Signed two's-complement fixed-point format Q(m, n).

    Attributes
    ----------
    integer_bits:
        Number of integer bits *m* (excluding the sign bit).
    fraction_bits:
        Number of fractional bits *n*.
    """

    integer_bits: int
    fraction_bits: int

    def __post_init__(self):
        if self.integer_bits < 0:
            raise FixedPointError(
                f"integer_bits must be >= 0, got {self.integer_bits}"
            )
        if self.fraction_bits < 1:
            raise FixedPointError(
                f"fraction_bits must be >= 1, got {self.fraction_bits}"
            )
        if self.total_bits > 62:
            raise FixedPointError(
                f"Q({self.integer_bits},{self.fraction_bits}) exceeds the "
                "62-bit emulation headroom"
            )

    @property
    def total_bits(self) -> int:
        """Word length including the sign bit."""
        return 1 + self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> int:
        """Integer representation of 1.0 (2**fraction_bits)."""
        return 1 << self.fraction_bits

    @property
    def max_int(self) -> int:
        """Largest representable raw integer."""
        return (1 << (self.integer_bits + self.fraction_bits)) - 1

    @property
    def min_int(self) -> int:
        """Smallest (most negative) representable raw integer."""
        return -(1 << (self.integer_bits + self.fraction_bits))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return self.max_int / self.scale

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return self.min_int / self.scale

    @property
    def resolution(self) -> float:
        """Value of one least-significant bit."""
        return 1.0 / self.scale

    # ------------------------------------------------------------------

    def quantize(
        self, values, rounding: str = "nearest", overflow: str = "saturate"
    ) -> np.ndarray:
        """Convert real values to raw fixed-point integers.

        Parameters
        ----------
        values:
            Real array (or scalar) to convert.
        rounding:
            ``"nearest"`` (ties away from zero) or ``"truncate"``
            (toward negative infinity, plain arithmetic shift).
        overflow:
            ``"saturate"`` clamps, ``"raise"`` raises
            :class:`FixedPointError` on out-of-range values.
        """
        arr = np.asarray(values, dtype=np.float64)
        scaled = arr * self.scale
        if rounding == "nearest":
            raw = np.where(
                scaled >= 0, np.floor(scaled + 0.5), np.ceil(scaled - 0.5)
            ).astype(np.int64)
        elif rounding == "truncate":
            raw = np.floor(scaled).astype(np.int64)
        else:
            raise FixedPointError(f"unknown rounding mode {rounding!r}")
        return self.handle_overflow(raw, overflow)

    def handle_overflow(self, raw: np.ndarray, overflow: str = "saturate") -> np.ndarray:
        """Apply the overflow policy to raw integers."""
        if overflow == "saturate":
            return np.clip(raw, self.min_int, self.max_int)
        if overflow == "raise":
            if np.any(raw > self.max_int) or np.any(raw < self.min_int):
                raise FixedPointError(
                    f"value overflows Q({self.integer_bits},{self.fraction_bits})"
                )
            return raw
        raise FixedPointError(f"unknown overflow mode {overflow!r}")

    def to_float(self, raw) -> np.ndarray:
        """Convert raw fixed-point integers back to real values."""
        return np.asarray(raw, dtype=np.float64) / self.scale

    def __str__(self) -> str:
        return f"Q{self.integer_bits}.{self.fraction_bits}"


#: The classic 16-bit DSP format: 1 sign + 15 fraction bits.
Q15 = QFormat(integer_bits=0, fraction_bits=15)
#: 32-bit high-precision format.
Q31 = QFormat(integer_bits=0, fraction_bits=31)
#: A 16-bit format with one integer bit (headroom for sqrt(2)-gain stages).
Q1_14 = QFormat(integer_bits=1, fraction_bits=14)
