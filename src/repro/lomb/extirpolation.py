"""Lagrange extirpolation (Press-Rybicki spreading).

The Fast-Lomb algorithm replaces the per-frequency trigonometric sums of
the direct method with sums it can evaluate by FFT.  To do that, every
irregular sample is *extirpolated* — spread onto a small neighbourhood of
a uniform grid with Lagrange interpolation weights run in reverse — so
that, for all sufficiently low frequencies, sums over the grid match sums
over the original sample instants.

This is the "extrapolation (i.e., redistribution to the needed order
[10])" step of the paper's PSA pipeline (Fig. 1a), and produces exactly
the spiky half-filled workspace of Fig. 3(a): 117 RR intervals spread
over the first ~256 cells of the 512-cell FFT workspace.
"""

from __future__ import annotations

import math

import numpy as np

from .._validation import as_1d_float_array
from ..errors import SignalError

__all__ = ["extirpolate", "extirpolation_weights"]

#: Default interpolation order used by Numerical Recipes' ``fasper``.
DEFAULT_ORDER = 4


def extirpolation_weights(
    position: float, size: int, order: int = DEFAULT_ORDER
) -> tuple[np.ndarray, np.ndarray]:
    """Grid indices and Lagrange weights for one sample.

    Returns ``(cells, weights)`` such that adding ``value * weights`` at
    ``cells`` extirpolates a sample located at the fractional grid
    *position*.  Matches the classic `spread` routine: integer positions
    collapse to a single cell; otherwise the *order* nearest cells receive
    reverse-Lagrange weights.
    """
    if not 0 <= position < size:
        raise SignalError(
            f"position {position} outside workspace [0, {size})"
        )
    if order < 2 or order > 10:
        raise SignalError(f"order must be in [2, 10], got {order}")
    if float(position).is_integer():
        return (np.array([int(position)]), np.array([1.0]))
    ilo = int(position - 0.5 * order + 1.0)
    ilo = min(max(ilo, 0), size - order)
    cells = ilo + np.arange(order)
    # fac = prod_k (x - j_k); weight_c = fac / ((x - j_c) * denom_c) with
    # denom_c = (-1)^(order-1-c) * c! * (order-1-c)!
    diffs = position - cells
    fac = float(np.prod(diffs))
    idx = np.arange(order)
    denominators = np.array(
        [
            ((-1.0) ** (order - 1 - c))
            * math.factorial(c)
            * math.factorial(order - 1 - c)
            for c in idx
        ]
    )
    weights = fac / (diffs * denominators)
    return cells, weights


def extirpolate(
    values, positions, size: int, order: int = DEFAULT_ORDER
) -> np.ndarray:
    """Spread *values* at fractional grid *positions* into a new workspace.

    Vectorised over samples; the result satisfies, for smooth test
    functions g evaluated on the grid,
    ``sum_j values[j] * g(positions[j]) ~= sum_c out[c] * g(c)``.
    """
    vals = as_1d_float_array(values, "values")
    pos = as_1d_float_array(positions, "positions")
    if vals.size != pos.size:
        raise SignalError(
            f"values and positions must match, got {vals.size} and {pos.size}"
        )
    if size < order:
        raise SignalError(f"workspace size {size} smaller than order {order}")
    if np.any(pos < 0) or np.any(pos >= size):
        raise SignalError(f"positions must lie in [0, {size})")

    out = np.zeros(size, dtype=np.float64)
    exact = pos == np.floor(pos)
    if np.any(exact):
        np.add.at(out, pos[exact].astype(np.int64), vals[exact])
    if np.all(exact):
        return out

    frac_pos = pos[~exact]
    frac_vals = vals[~exact]
    ilo = (frac_pos - 0.5 * order + 1.0).astype(np.int64)
    ilo = np.clip(ilo, 0, size - order)
    cells = ilo[:, None] + np.arange(order)[None, :]
    diffs = frac_pos[:, None] - cells
    fac = np.prod(diffs, axis=1)
    idx = np.arange(order)
    denominators = np.array(
        [
            ((-1.0) ** (order - 1 - c))
            * math.factorial(c)
            * math.factorial(order - 1 - c)
            for c in idx
        ]
    )
    weights = fac[:, None] / (diffs * denominators[None, :])
    np.add.at(out, cells, frac_vals[:, None] * weights)
    return out
