"""Lagrange extirpolation (Press-Rybicki spreading).

The Fast-Lomb algorithm replaces the per-frequency trigonometric sums of
the direct method with sums it can evaluate by FFT.  To do that, every
irregular sample is *extirpolated* — spread onto a small neighbourhood of
a uniform grid with Lagrange interpolation weights run in reverse — so
that, for all sufficiently low frequencies, sums over the grid match sums
over the original sample instants.

This is the "extrapolation (i.e., redistribution to the needed order
[10])" step of the paper's PSA pipeline (Fig. 1a), and produces exactly
the spiky half-filled workspace of Fig. 3(a): 117 RR intervals spread
over the first ~256 cells of the 512-cell FFT workspace.

Two execution paths share the same weights:

* :func:`extirpolate` — one window onto one workspace (the sequential
  oracle),
* :func:`extirpolate_batch` — many windows at once, scatter-added over a
  flattened ``(window, cell)`` index space with one ``bincount``.  The
  contribution ordering per cell matches the sequential path, so batched
  workspaces are bit-identical per row.

The constant Lagrange denominator table is memoised in
:func:`repro.ffts.plancache.lagrange_denominators` instead of being
rebuilt from ``math.factorial`` on every call.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_float_array
from ..errors import SignalError
from ..ffts.plancache import lagrange_denominators
from ..perf.workspace import Scratch, carve, scratch

__all__ = ["extirpolate", "extirpolate_batch", "extirpolation_weights"]

#: Default interpolation order used by Numerical Recipes' ``fasper``.
DEFAULT_ORDER = 4


def extirpolation_weights(
    position: float, size: int, order: int = DEFAULT_ORDER
) -> tuple[np.ndarray, np.ndarray]:
    """Grid indices and Lagrange weights for one sample.

    Returns ``(cells, weights)`` such that adding ``value * weights`` at
    ``cells`` extirpolates a sample located at the fractional grid
    *position*.  Matches the classic `spread` routine: integer positions
    collapse to a single cell; otherwise the *order* nearest cells receive
    reverse-Lagrange weights.
    """
    if not 0 <= position < size:
        raise SignalError(
            f"position {position} outside workspace [0, {size})"
        )
    if order < 2 or order > 10:
        raise SignalError(f"order must be in [2, 10], got {order}")
    if float(position).is_integer():
        return (np.array([int(position)]), np.array([1.0]))
    ilo = int(position - 0.5 * order + 1.0)
    ilo = min(max(ilo, 0), size - order)
    cells = ilo + np.arange(order)
    # fac = prod_k (x - j_k); weight_c = fac / ((x - j_c) * denom_c) with
    # denom_c = (-1)^(order-1-c) * c! * (order-1-c)! (cached table).
    diffs = position - cells
    fac = float(np.prod(diffs))
    weights = fac / (diffs * lagrange_denominators(order))
    return cells, weights


def extirpolate(
    values, positions, size: int, order: int = DEFAULT_ORDER
) -> np.ndarray:
    """Spread *values* at fractional grid *positions* into a new workspace.

    Vectorised over samples; the result satisfies, for smooth test
    functions g evaluated on the grid,
    ``sum_j values[j] * g(positions[j]) ~= sum_c out[c] * g(c)``.
    """
    vals = as_1d_float_array(values, "values")
    pos = as_1d_float_array(positions, "positions")
    if vals.size != pos.size:
        raise SignalError(
            f"values and positions must match, got {vals.size} and {pos.size}"
        )
    if size < order:
        raise SignalError(f"workspace size {size} smaller than order {order}")
    if np.any(pos < 0) or np.any(pos >= size):
        raise SignalError(f"positions must lie in [0, {size})")

    out = np.zeros(size, dtype=np.float64)
    exact = pos == np.floor(pos)
    if np.any(exact):
        np.add.at(out, pos[exact].astype(np.int64), vals[exact])
    if np.all(exact):
        return out

    frac_pos = pos[~exact]
    frac_vals = vals[~exact]
    ilo, weights = _fractional_spread(frac_pos, size, order)
    cells = ilo[:, None] + np.arange(order)
    np.add.at(out, cells, frac_vals[:, None] * weights)
    return out


def _fractional_spread(
    frac_pos: np.ndarray, size: int, order: int, ws: Scratch | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """First cell and reverse-Lagrange weights of non-integer positions.

    Returns ``(ilo, weights)``: sample ``j`` spreads onto cells
    ``ilo[j] + 0 .. order-1`` with ``weights[j]``.  The weights
    ``prod_{k != c}(x - j_k) / denom_c`` are built from prefix/suffix
    products over the columns — one short multiply chain instead of a
    strided row reduction plus a full elementwise division, which is
    what makes the flattened batch path cheap.  Sequential and batched
    extirpolation share this helper, so they perform identical
    floating-point work per sample.

    When *ws* is given, the order-4 temporaries (and the returned
    arrays) are leased from it instead of freshly allocated; the
    operations performed are identical either way, so the results are
    bit-identical.
    """
    if ws is None:
        ws = Scratch(None)
    n = frac_pos.size
    if order == 4:
        # Closed form of the prefix/suffix chain below, with the shared
        # sub-products factored out — noticeably fewer array passes on
        # the hottest path (order 4 is Numerical Recipes' and this
        # repo's default).  The multiplication orders reproduce the
        # generic chain exactly (prefix * suffix, commuted operand
        # pairs only), so the weights are bit-identical to it.
        shifted, d1, d2, d3, p01, p32, ilo, weights = carve(
            ws.take((11 * n,)),
            (n,),
            (n,),
            (n,),
            (n,),
            (n,),
            (n,),
            ((n,), np.int64),
            (n, 4),
        )
        np.subtract(frac_pos, 0.5 * order, out=shifted)
        np.add(shifted, 1.0, out=shifted)
        np.copyto(ilo, shifted, casting="unsafe")  # astype truncation
        np.clip(ilo, 0, size - order, out=ilo)
        d0 = shifted  # storage reuse only; value fully overwritten
        np.subtract(frac_pos, ilo, out=d0)
        np.subtract(d0, 1.0, out=d1)
        np.subtract(d0, 2.0, out=d2)
        np.subtract(d0, 3.0, out=d3)
        np.multiply(d0, d1, out=p01)
        np.multiply(d3, d2, out=p32)
        np.multiply(p32, d1, out=weights[:, 0])
        np.multiply(d0, p32, out=weights[:, 1])
        np.multiply(p01, d3, out=weights[:, 2])
        np.multiply(p01, d2, out=weights[:, 3])
        np.multiply(weights, 1.0 / lagrange_denominators(4), out=weights)
        return ilo, weights
    ilo = (frac_pos - 0.5 * order + 1.0).astype(np.int64)
    ilo = np.clip(ilo, 0, size - order)
    # diffs[:, c] = x - (ilo + c), computed from the relative offset so
    # the cells matrix is never materialised in float.
    diffs = (frac_pos - ilo)[:, None] - np.arange(order, dtype=np.float64)
    weights = np.empty_like(diffs)
    running = np.ones_like(frac_pos)
    for c in range(order):  # prefix: prod_{k < c} diffs_k
        weights[:, c] = running
        running = running * diffs[:, c]
    running = np.ones_like(frac_pos)
    for c in range(order - 1, -1, -1):  # suffix: prod_{k > c} diffs_k
        weights[:, c] *= running
        running = running * diffs[:, c]
    weights *= 1.0 / lagrange_denominators(order)
    return ilo, weights


def extirpolate_batch(
    values,
    positions,
    size: int,
    order: int = DEFAULT_ORDER,
    lengths=None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Extirpolate many windows at once onto a ``(n_windows, size)`` batch.

    Parameters
    ----------
    values, positions:
        ``(n_windows, max_samples)`` arrays.  Windows shorter than
        ``max_samples`` are right-padded; *lengths* marks how many leading
        entries of each row are real samples (``None`` means all of them).
    size:
        Workspace length per window.
    order:
        Lagrange interpolation order.
    lengths:
        Optional ``(n_windows,)`` integer array of valid sample counts.
    out:
        Optional ``(n_windows, size)`` float64 destination.  The scatter
        itself runs through ``bincount`` (which always allocates its own
        result); *out* receives a copy of it, so callers can keep the
        batch workspace in a :class:`~repro.perf.WorkspaceArena` buffer.

    The scatter-add runs over a flattened ``(window, cell)`` index space
    with a single ``bincount`` — no per-window Python iteration.  Exact
    (integer-position) contributions are accumulated before fractional
    ones, sample-major within each group, which is the same per-cell
    ordering the sequential :func:`extirpolate` uses; each row of the
    result is therefore bit-identical to a sequential call on that
    window.  All staging arrays (masks, gathered positions, flattened
    cell indices and weights) are leased from the active workspace arena
    when one is installed; every operation is performed identically with
    or without an arena, so the results are bit-for-bit the same.
    """
    vals_in = np.asarray(values, dtype=np.float64)
    pos_in = np.asarray(positions, dtype=np.float64)
    if vals_in.ndim != 2 or pos_in.ndim != 2 or vals_in.shape != pos_in.shape:
        raise SignalError(
            "values and positions must be matching 2-D arrays, got shapes "
            f"{vals_in.shape} and {pos_in.shape}"
        )
    if size < order:
        raise SignalError(f"workspace size {size} smaller than order {order}")
    if order < 2 or order > 10:
        raise SignalError(f"order must be in [2, 10], got {order}")
    rows, width = vals_in.shape
    if out is not None and (
        out.shape != (rows, size) or out.dtype != np.float64
    ):
        raise SignalError(
            f"out must be float64 with shape ({rows}, {size}), got "
            f"{out.dtype} {out.shape}"
        )
    counts = None
    if lengths is not None:
        counts = np.asarray(lengths, dtype=np.int64)
        if counts.shape != (rows,):
            raise SignalError(
                f"lengths must have shape ({rows},), got {counts.shape}"
            )
        if np.any(counts < 0) or np.any(counts > width):
            raise SignalError(f"lengths must lie in [0, {width}]")

    with scratch() as ws:
        shape = (rows, width)
        # Working copies: masking and gathers must not disturb inputs.
        # One flat lease carved into every same-itemsize staging array
        # (int64 views over float64 storage — bit reinterpretation, not
        # conversion) keeps the arena round-trips per call to three.
        pos, vals, floors, row_offsets, cells = carve(
            ws.take((5 * rows * width,)),
            shape,
            shape,
            shape,
            (shape, np.int64),
            (shape, np.int64),
        )
        valid, bad, oob, exact = ws.take_block(4, shape, np.bool_)
        np.copyto(pos, pos_in)
        np.copyto(vals, vals_in)

        if counts is None:
            valid.fill(True)
        else:
            np.less(np.arange(width)[None, :], counts[:, None], out=valid)
        np.less(pos, 0.0, out=bad)
        np.greater_equal(pos, size, out=oob)
        np.logical_or(bad, oob, out=bad)
        np.logical_and(bad, valid, out=bad)
        if np.any(bad):
            raise SignalError(f"positions must lie in [0, {size})")

        # Padding entries become zero-valued samples at cell 0: they land
        # in the bincount but add exactly 0.0, leaving every row untouched.
        if counts is not None:
            invalid = oob  # storage reuse; value fully overwritten
            np.logical_not(valid, out=invalid)
            np.copyto(pos, 0.0, where=invalid)
            np.copyto(vals, 0.0, where=invalid)

        np.floor(pos, out=floors)
        np.equal(pos, floors, out=exact)
        n_exact = int(np.count_nonzero(exact))
        n_frac = rows * width - n_exact

        # Flattened (window, cell) indices of the exact contributions:
        # row * size + integer cell, gathered row-major like the boolean
        # fancy indexing of the sequential formulation.
        row_offsets[:] = (np.arange(rows, dtype=np.int64) * size)[:, None]
        np.copyto(cells, floors, casting="unsafe")  # astype truncation
        np.add(cells, row_offsets, out=cells)

        n_flat = n_exact + n_frac * order
        flat, flat_weights = carve(
            ws.take((2 * n_flat,)), ((n_flat,), np.int64), (n_flat,)
        )
        exact_mask = exact.ravel()
        np.compress(exact_mask, cells.ravel(), out=flat[:n_exact])
        np.compress(exact_mask, vals.ravel(), out=flat_weights[:n_exact])

        if n_frac:
            frac = exact  # storage reuse; value fully overwritten
            np.logical_not(exact, out=frac)
            frac_mask = frac.ravel()
            frac_pos, frac_vals, base = carve(
                ws.take((3 * n_frac,)),
                (n_frac,),
                (n_frac,),
                ((n_frac,), np.int64),
            )
            np.compress(frac_mask, pos.ravel(), out=frac_pos)
            np.compress(frac_mask, vals.ravel(), out=frac_vals)
            np.compress(frac_mask, row_offsets.ravel(), out=base)
            ilo, weights = _fractional_spread(frac_pos, size, order, ws=ws)
            np.add(base, ilo, out=base)
            # The tails of flat/flat_weights, viewed (n_frac, order), are
            # exactly where the ravel()ed fractional blocks of the
            # sequential formulation land after concatenation.
            frac_cells = flat[n_exact:].reshape(n_frac, order)
            np.add(base[:, None], np.arange(order), out=frac_cells)
            frac_weights = flat_weights[n_exact:].reshape(n_frac, order)
            np.multiply(frac_vals[:, None], weights, out=frac_weights)

        # bincount is by far the fastest exact scatter-add numpy offers
        # but always allocates its result; this is the one unavoidable
        # fresh allocation of the batch path.
        binned = np.bincount(
            flat, weights=flat_weights, minlength=rows * size
        )
    result = binned.reshape(rows, size)
    if out is None:
        return result
    np.copyto(out, result)
    return out
