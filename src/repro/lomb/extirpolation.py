"""Lagrange extirpolation (Press-Rybicki spreading).

The Fast-Lomb algorithm replaces the per-frequency trigonometric sums of
the direct method with sums it can evaluate by FFT.  To do that, every
irregular sample is *extirpolated* — spread onto a small neighbourhood of
a uniform grid with Lagrange interpolation weights run in reverse — so
that, for all sufficiently low frequencies, sums over the grid match sums
over the original sample instants.

This is the "extrapolation (i.e., redistribution to the needed order
[10])" step of the paper's PSA pipeline (Fig. 1a), and produces exactly
the spiky half-filled workspace of Fig. 3(a): 117 RR intervals spread
over the first ~256 cells of the 512-cell FFT workspace.

Two execution paths share the same weights:

* :func:`extirpolate` — one window onto one workspace (the sequential
  oracle),
* :func:`extirpolate_batch` — many windows at once, scatter-added over a
  flattened ``(window, cell)`` index space with one ``bincount``.  The
  contribution ordering per cell matches the sequential path, so batched
  workspaces are bit-identical per row.

The constant Lagrange denominator table is memoised in
:func:`repro.ffts.plancache.lagrange_denominators` instead of being
rebuilt from ``math.factorial`` on every call.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_float_array
from ..errors import SignalError
from ..ffts.plancache import lagrange_denominators

__all__ = ["extirpolate", "extirpolate_batch", "extirpolation_weights"]

#: Default interpolation order used by Numerical Recipes' ``fasper``.
DEFAULT_ORDER = 4


def extirpolation_weights(
    position: float, size: int, order: int = DEFAULT_ORDER
) -> tuple[np.ndarray, np.ndarray]:
    """Grid indices and Lagrange weights for one sample.

    Returns ``(cells, weights)`` such that adding ``value * weights`` at
    ``cells`` extirpolates a sample located at the fractional grid
    *position*.  Matches the classic `spread` routine: integer positions
    collapse to a single cell; otherwise the *order* nearest cells receive
    reverse-Lagrange weights.
    """
    if not 0 <= position < size:
        raise SignalError(
            f"position {position} outside workspace [0, {size})"
        )
    if order < 2 or order > 10:
        raise SignalError(f"order must be in [2, 10], got {order}")
    if float(position).is_integer():
        return (np.array([int(position)]), np.array([1.0]))
    ilo = int(position - 0.5 * order + 1.0)
    ilo = min(max(ilo, 0), size - order)
    cells = ilo + np.arange(order)
    # fac = prod_k (x - j_k); weight_c = fac / ((x - j_c) * denom_c) with
    # denom_c = (-1)^(order-1-c) * c! * (order-1-c)! (cached table).
    diffs = position - cells
    fac = float(np.prod(diffs))
    weights = fac / (diffs * lagrange_denominators(order))
    return cells, weights


def extirpolate(
    values, positions, size: int, order: int = DEFAULT_ORDER
) -> np.ndarray:
    """Spread *values* at fractional grid *positions* into a new workspace.

    Vectorised over samples; the result satisfies, for smooth test
    functions g evaluated on the grid,
    ``sum_j values[j] * g(positions[j]) ~= sum_c out[c] * g(c)``.
    """
    vals = as_1d_float_array(values, "values")
    pos = as_1d_float_array(positions, "positions")
    if vals.size != pos.size:
        raise SignalError(
            f"values and positions must match, got {vals.size} and {pos.size}"
        )
    if size < order:
        raise SignalError(f"workspace size {size} smaller than order {order}")
    if np.any(pos < 0) or np.any(pos >= size):
        raise SignalError(f"positions must lie in [0, {size})")

    out = np.zeros(size, dtype=np.float64)
    exact = pos == np.floor(pos)
    if np.any(exact):
        np.add.at(out, pos[exact].astype(np.int64), vals[exact])
    if np.all(exact):
        return out

    frac_pos = pos[~exact]
    frac_vals = vals[~exact]
    ilo, weights = _fractional_spread(frac_pos, size, order)
    cells = ilo[:, None] + np.arange(order)
    np.add.at(out, cells, frac_vals[:, None] * weights)
    return out


def _fractional_spread(
    frac_pos: np.ndarray, size: int, order: int
) -> tuple[np.ndarray, np.ndarray]:
    """First cell and reverse-Lagrange weights of non-integer positions.

    Returns ``(ilo, weights)``: sample ``j`` spreads onto cells
    ``ilo[j] + 0 .. order-1`` with ``weights[j]``.  The weights
    ``prod_{k != c}(x - j_k) / denom_c`` are built from prefix/suffix
    products over the columns — one short multiply chain instead of a
    strided row reduction plus a full elementwise division, which is
    what makes the flattened batch path cheap.  Sequential and batched
    extirpolation share this helper, so they perform identical
    floating-point work per sample.
    """
    ilo = (frac_pos - 0.5 * order + 1.0).astype(np.int64)
    ilo = np.clip(ilo, 0, size - order)
    if order == 4:
        # Closed form of the prefix/suffix chain below, with the shared
        # sub-products factored out — noticeably fewer array passes on
        # the hottest path (order 4 is Numerical Recipes' and this
        # repo's default).  The multiplication orders reproduce the
        # generic chain exactly (prefix * suffix, commuted operand
        # pairs only), so the weights are bit-identical to it.
        d0 = frac_pos - ilo
        d1 = d0 - 1.0
        d2 = d0 - 2.0
        d3 = d0 - 3.0
        p01 = d0 * d1
        p32 = d3 * d2
        weights = np.empty((frac_pos.size, 4))
        weights[:, 0] = p32 * d1
        weights[:, 1] = d0 * p32
        weights[:, 2] = p01 * d3
        weights[:, 3] = p01 * d2
        weights *= 1.0 / lagrange_denominators(4)
        return ilo, weights
    # diffs[:, c] = x - (ilo + c), computed from the relative offset so
    # the cells matrix is never materialised in float.
    diffs = (frac_pos - ilo)[:, None] - np.arange(order, dtype=np.float64)
    weights = np.empty_like(diffs)
    running = np.ones_like(frac_pos)
    for c in range(order):  # prefix: prod_{k < c} diffs_k
        weights[:, c] = running
        running = running * diffs[:, c]
    running = np.ones_like(frac_pos)
    for c in range(order - 1, -1, -1):  # suffix: prod_{k > c} diffs_k
        weights[:, c] *= running
        running = running * diffs[:, c]
    weights *= 1.0 / lagrange_denominators(order)
    return ilo, weights


def extirpolate_batch(
    values,
    positions,
    size: int,
    order: int = DEFAULT_ORDER,
    lengths=None,
) -> np.ndarray:
    """Extirpolate many windows at once onto a ``(n_windows, size)`` batch.

    Parameters
    ----------
    values, positions:
        ``(n_windows, max_samples)`` arrays.  Windows shorter than
        ``max_samples`` are right-padded; *lengths* marks how many leading
        entries of each row are real samples (``None`` means all of them).
    size:
        Workspace length per window.
    order:
        Lagrange interpolation order.
    lengths:
        Optional ``(n_windows,)`` integer array of valid sample counts.

    The scatter-add runs over a flattened ``(window, cell)`` index space
    with a single ``bincount`` — no per-window Python iteration.  Exact
    (integer-position) contributions are accumulated before fractional
    ones, sample-major within each group, which is the same per-cell
    ordering the sequential :func:`extirpolate` uses; each row of the
    result is therefore bit-identical to a sequential call on that
    window.
    """
    vals = np.asarray(values, dtype=np.float64)
    pos = np.asarray(positions, dtype=np.float64)
    if vals.ndim != 2 or pos.ndim != 2 or vals.shape != pos.shape:
        raise SignalError(
            "values and positions must be matching 2-D arrays, got shapes "
            f"{vals.shape} and {pos.shape}"
        )
    if size < order:
        raise SignalError(f"workspace size {size} smaller than order {order}")
    if order < 2 or order > 10:
        raise SignalError(f"order must be in [2, 10], got {order}")
    rows, width = vals.shape
    if lengths is None:
        valid = np.ones(vals.shape, dtype=bool)
    else:
        counts = np.asarray(lengths, dtype=np.int64)
        if counts.shape != (rows,):
            raise SignalError(
                f"lengths must have shape ({rows},), got {counts.shape}"
            )
        if np.any(counts < 0) or np.any(counts > width):
            raise SignalError(f"lengths must lie in [0, {width}]")
        valid = np.arange(width)[None, :] < counts[:, None]
    if np.any(valid & ((pos < 0) | (pos >= size))):
        raise SignalError(f"positions must lie in [0, {size})")

    # Padding entries become zero-valued samples at cell 0: they land in
    # the bincount but add exactly 0.0, leaving every row untouched.
    pos = np.where(valid, pos, 0.0)
    vals = np.where(valid, vals, 0.0)
    row_idx = np.broadcast_to(np.arange(rows)[:, None], pos.shape)

    exact = pos == np.floor(pos)
    exact_flat = row_idx[exact] * size + pos[exact].astype(np.int64)
    exact_weights = vals[exact]

    frac = ~exact
    if np.any(frac):
        ilo, weights = _fractional_spread(pos[frac], size, order)
        base = row_idx[frac] * size + ilo
        frac_flat = (base[:, None] + np.arange(order)).ravel()
        frac_weights = (vals[frac][:, None] * weights).ravel()
        flat = np.concatenate([exact_flat, frac_flat])
        flat_weights = np.concatenate([exact_weights, frac_weights])
    else:
        flat = exact_flat
        flat_weights = exact_weights
    out = np.bincount(flat, weights=flat_weights, minlength=rows * size)
    return out.reshape(rows, size)
