"""Direct Lomb periodogram for unevenly sampled data (paper eq. 1).

The Lomb method fits sinusoids by least squares at each probe frequency,
avoiding the interpolation/resampling of classical periodograms that can
distort the spectrum of RR-interval series (Section II.A).  This is the
O(N * N_freq) reference; the production path is
:mod:`repro.lomb.fast` (Press-Rybicki), which this module validates.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_1d_float_array
from ..errors import SignalError

__all__ = ["lomb_periodogram", "lomb_frequency_grid"]


def lomb_frequency_grid(
    duration: float, n_samples: int, oversample: float = 2.0,
    max_frequency: float | None = None,
) -> np.ndarray:
    """Frequency grid of a Lomb analysis.

    Frequencies are ``f_m = m * df`` for ``m = 1..nout`` with
    ``df = 1 / (oversample * duration)``.  When *max_frequency* is None,
    ``nout`` extends to the pseudo-Nyquist rate ``n / (2 * duration)``.
    """
    if duration <= 0:
        raise SignalError(f"duration must be positive, got {duration}")
    if oversample < 1.0:
        raise SignalError(f"oversample must be >= 1, got {oversample}")
    df = 1.0 / (oversample * duration)
    if max_frequency is None:
        max_frequency = 0.5 * n_samples / duration
    nout = int(np.floor(max_frequency / df))
    if nout < 1:
        raise SignalError(
            f"frequency grid is empty (max_frequency={max_frequency}, df={df})"
        )
    return df * np.arange(1, nout + 1)


def lomb_periodogram(
    times, values, frequencies=None, oversample: float = 2.0,
    max_frequency: float | None = None, center_data: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Normalised Lomb periodogram of irregular samples.

    Implements paper eq. 1 with the time-shift-invariant offset tau:

        tan(2 w tau) = sum sin(2 w t_j) / sum cos(2 w t_j)

    The returned power is normalised by ``2 * variance`` so a white-noise
    input has unit expected power per frequency.

    Parameters
    ----------
    times, values:
        Sample instants (seconds, strictly increasing) and sample values.
    frequencies:
        Probe frequencies in Hz; derived from *oversample* /
        *max_frequency* via :func:`lomb_frequency_grid` when omitted.
    center_data:
        Subtract the mean before fitting (the paper's pipeline does).

    Returns
    -------
    (frequencies, power)
    """
    t = as_1d_float_array(times, "times", min_length=2)
    x = as_1d_float_array(values, "values", min_length=2)
    if t.size != x.size:
        raise SignalError(
            f"times and values must have equal length, got {t.size} and {x.size}"
        )
    if np.any(np.diff(t) <= 0):
        raise SignalError("times must be strictly increasing")
    duration = float(t[-1] - t[0])
    if frequencies is None:
        frequencies = lomb_frequency_grid(
            duration, t.size, oversample, max_frequency
        )
    freqs = as_1d_float_array(frequencies, "frequencies")
    if np.any(freqs <= 0):
        raise SignalError("frequencies must be positive")

    centered = x - x.mean() if center_data else x.copy()
    variance = float(np.var(x, ddof=1))
    if variance <= 0:
        raise SignalError("input has zero variance; periodogram undefined")

    omegas = 2.0 * np.pi * freqs
    power = np.empty(freqs.size, dtype=np.float64)
    for i, omega in enumerate(omegas):
        s2 = float(np.sum(np.sin(2.0 * omega * t)))
        c2 = float(np.sum(np.cos(2.0 * omega * t)))
        tau = 0.5 * np.arctan2(s2, c2) / omega
        arg = omega * (t - tau)
        cos_arg = np.cos(arg)
        sin_arg = np.sin(arg)
        c_num = float(centered @ cos_arg)
        s_num = float(centered @ sin_arg)
        c_den = float(cos_arg @ cos_arg)
        s_den = float(sin_arg @ sin_arg)
        power[i] = (c_num * c_num / c_den + s_num * s_num / s_den) / (
            2.0 * variance
        )
    return freqs, power
