"""Lomb periodogram substrate: direct, fast (Press-Rybicki) and Welch.

The spectral engine of the PSA system: the direct Lomb method (paper
eq. 1) as reference, Lagrange extirpolation plus the FFT-based Fast-Lomb
used in production, and the sliding-window Welch-Lomb wrapper for
time-frequency monitoring.
"""

from .direct import lomb_frequency_grid, lomb_periodogram
from .extirpolation import extirpolate, extirpolate_batch, extirpolation_weights
from .fast import BLOCK_COSTS, FastLomb, LombSpectrum
from .welch import WelchLomb, WelchLombResult, iter_windows

__all__ = [
    "BLOCK_COSTS",
    "FastLomb",
    "LombSpectrum",
    "WelchLomb",
    "WelchLombResult",
    "extirpolate",
    "extirpolate_batch",
    "extirpolation_weights",
    "iter_windows",
    "lomb_frequency_grid",
    "lomb_periodogram",
]
