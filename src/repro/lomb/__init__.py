"""Lomb periodogram substrate: direct, fast (Press-Rybicki) and Welch.

The spectral engine of the PSA system: the direct Lomb method (paper
eq. 1) as reference, Lagrange extirpolation plus the FFT-based Fast-Lomb
used in production, and the sliding-window Welch-Lomb wrapper for
time-frequency monitoring.
"""

from .direct import lomb_frequency_grid, lomb_periodogram
from .extirpolation import extirpolate, extirpolate_batch, extirpolation_weights
from .fast import (
    BLOCK_COSTS,
    FastLomb,
    LombSpectrum,
    get_batch_chunk_windows,
    set_batch_chunk_windows,
)
from .welch import (
    RecordingWindows,
    WelchLomb,
    WelchLombResult,
    assemble_result,
    iter_windows,
)

__all__ = [
    "BLOCK_COSTS",
    "FastLomb",
    "LombSpectrum",
    "RecordingWindows",
    "WelchLomb",
    "WelchLombResult",
    "assemble_result",
    "extirpolate",
    "extirpolate_batch",
    "extirpolation_weights",
    "get_batch_chunk_windows",
    "iter_windows",
    "lomb_frequency_grid",
    "lomb_periodogram",
    "set_batch_chunk_windows",
]
