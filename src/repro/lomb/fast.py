"""Fast-Lomb periodogram (Press-Rybicki) with a pluggable FFT kernel.

The direct Lomb method costs O(N_samples x N_freq) trigonometric sums.
Press & Rybicki's algorithm [10 in the paper] extirpolates the samples
onto a uniform workspace, evaluates the four required sums with FFTs and
combines them per frequency.  The paper's PSA system fixes the workspace
at N = 512, packs the data and window workspaces into **one complex FFT**
and swaps that FFT between the conventional split-radix kernel and the
pruned wavelet kernel — which is exactly what this class does through the
:class:`~repro.ffts.backends.FFTBackend` protocol.

Operation accounting covers every pipeline block (extirpolation, moment
computation, FFT, spectrum unpacking, Lomb combination) so the platform
model can reproduce the Fig. 1(b) energy breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array, require_power_of_two
from ..errors import ConfigurationError, SignalError
from ..ffts.backends import FFTBackend, SplitRadixFFT
from ..ffts.opcount import OpCounts
from .extirpolation import DEFAULT_ORDER, extirpolate

__all__ = ["FastLomb", "LombSpectrum", "BLOCK_COSTS"]

#: Per-unit operation costs of the non-FFT pipeline blocks.  Divisions and
#: square roots are expanded to 4 multiplications each, the usual cost of
#: the iterative routines on a multiplier-only embedded core.
BLOCK_COSTS = {
    # Per input sample: position scaling for both workspaces plus two
    # order-4 Lagrange spreads (weight products, division, accumulate).
    "extirpolation_per_sample": OpCounts(mults=26, adds=9),
    # Per input sample: running mean and variance accumulation.
    "moments_per_sample": OpCounts(mults=1, adds=3),
    # Per frequency bin: unpacking the two real spectra from the packed
    # complex FFT output (two complex adds + two halvings each).
    "unpack_per_bin": OpCounts(mults=4, adds=4),
    # Per frequency bin: hypotenuse, tau rotation, numerators/denominators
    # and the final normalisation (incl. 3 sqrt + 4 div at 4 mults each).
    "lomb_combine_per_bin": OpCounts(mults=24, adds=9),
}


@dataclass(frozen=True)
class LombSpectrum:
    """Result of one Fast-Lomb evaluation.

    Attributes
    ----------
    frequencies:
        Probe frequencies in Hz (uniform grid ``m * df``).
    power:
        Periodogram values; normalisation per the ``scaling`` option of
        :class:`FastLomb`.
    mean, variance:
        Sample moments of the analysed values.
    n_samples:
        Number of irregular samples in the window.
    duration:
        Window time span in seconds.
    counts:
        Executed operation counts (``None`` unless requested).
    """

    frequencies: np.ndarray
    power: np.ndarray
    mean: float
    variance: float
    n_samples: int
    duration: float
    counts: OpCounts | None = None

    def band_power(self, low: float, high: float) -> float:
        """Integrated power in ``[low, high)`` Hz (rectangle rule)."""
        if high <= low:
            raise SignalError(f"empty band [{low}, {high})")
        mask = (self.frequencies >= low) & (self.frequencies < high)
        if self.frequencies.size < 2:
            raise SignalError("spectrum too short for band integration")
        df = float(self.frequencies[1] - self.frequencies[0])
        return float(np.sum(self.power[mask]) * df)


class FastLomb:
    """Press-Rybicki Fast-Lomb analyser with a fixed-size FFT workspace.

    Parameters
    ----------
    workspace_size:
        FFT length N (power of two); the paper uses 512.
    oversample:
        Frequency oversampling factor (``df = 1 / (oversample * T)``).
        The default 2.0 reproduces the paper's geometry: a 2-minute
        window of ~117 beats extirpolates onto the first ~256 cells of
        the 512-cell workspace (Fig. 3a).
    max_frequency:
        Highest probe frequency in Hz; ``None`` extends the grid to the
        pseudo-Nyquist limit allowed by the workspace.
    order:
        Extirpolation (Lagrange) order, 4 as in Numerical Recipes.
    backend:
        FFT kernel; defaults to the conventional
        :class:`~repro.ffts.backends.SplitRadixFFT`.  Pass a
        :class:`~repro.ffts.wavelet_fft.WaveletFFT` to get the paper's
        proposed system.
    scaling:
        ``"standard"`` — classic Lomb normalisation by ``2 * variance``;
        ``"denormalized"`` — multiplied back by ``2 * variance / n``
        (the paper's Welch de-normalisation, suitable for averaging).
    """

    def __init__(
        self,
        workspace_size: int = 512,
        oversample: float = 2.0,
        max_frequency: float | None = None,
        order: int = DEFAULT_ORDER,
        backend: FFTBackend | None = None,
        scaling: str = "standard",
    ):
        self.workspace_size = require_power_of_two(workspace_size, "workspace_size")
        if oversample < 1.0:
            raise ConfigurationError(
                f"oversample must be >= 1, got {oversample}"
            )
        self.oversample = float(oversample)
        if max_frequency is not None and max_frequency <= 0:
            raise ConfigurationError(
                f"max_frequency must be positive, got {max_frequency}"
            )
        self.max_frequency = max_frequency
        self.order = int(order)
        if backend is None:
            backend = SplitRadixFFT(self.workspace_size)
        if backend.n != self.workspace_size:
            raise ConfigurationError(
                f"backend size {backend.n} != workspace size {self.workspace_size}"
            )
        self.backend = backend
        if scaling not in ("standard", "denormalized"):
            raise ConfigurationError(
                f"scaling must be 'standard' or 'denormalized', got {scaling!r}"
            )
        self.scaling = scaling

    # ------------------------------------------------------------------

    def _grid(self, duration: float, n_samples: int) -> tuple[float, int]:
        df = 1.0 / (self.oversample * duration)
        # The extirpolation grid has ndim*df samples per second; frequencies
        # beyond its Nyquist limit (ndim/2 bins) would alias, so a window
        # that is too long for the fixed workspace must be rejected rather
        # than silently truncated — the paper's 2-minute windows with
        # N = 512 keep the full 0-0.4 Hz HRV range well inside the limit.
        limit = self.workspace_size // 2 - 1
        if self.max_frequency is None:
            nyquist_like = 0.5 * n_samples / duration
            nout = min(int(np.floor(nyquist_like / df)), limit)
        else:
            nout = int(np.floor(self.max_frequency / df))
            if nout > limit:
                raise SignalError(
                    f"max_frequency {self.max_frequency} Hz needs {nout} bins "
                    f"but a {self.workspace_size}-point workspace over a "
                    f"{duration:.0f} s window supports only {limit}; use "
                    "shorter (Welch) windows or a larger workspace"
                )
        if nout < 1:
            raise SignalError("window too short: empty frequency grid")
        return df, nout

    def periodogram(
        self, times, values, count_ops: bool = False
    ) -> LombSpectrum:
        """Fast-Lomb periodogram of one window of irregular samples."""
        t = as_1d_float_array(times, "times", min_length=4)
        x = as_1d_float_array(values, "values", min_length=4)
        if t.size != x.size:
            raise SignalError(
                f"times and values must match, got {t.size} and {x.size}"
            )
        if np.any(np.diff(t) <= 0):
            raise SignalError("times must be strictly increasing")
        duration = float(t[-1] - t[0])
        if duration <= 0:
            raise SignalError("window duration must be positive")
        n = t.size
        df, nout = self._grid(duration, n)

        mean = float(x.mean())
        variance = float(np.var(x, ddof=1))
        if variance <= 0:
            raise SignalError("window has zero variance")
        centered = x - mean

        ndim = self.workspace_size
        fac = ndim * df
        pos_data = (t - t[0]) * fac
        pos_data = np.clip(pos_data, 0.0, np.nextafter(float(ndim), 0.0))
        pos_window = np.mod(2.0 * pos_data, float(ndim))
        wk1 = extirpolate(centered, pos_data, ndim, self.order)
        wk2 = extirpolate(np.ones(n), pos_window, ndim, self.order)

        packed = wk1 + 1j * wk2
        if count_ops:
            spectrum, fft_counts = self.backend.transform_with_counts(packed)
        else:
            spectrum = self.backend.transform(packed)
            fft_counts = None

        m = np.arange(1, nout + 1)
        z_pos = spectrum[m]
        z_neg = spectrum[ndim - m]
        # Band-drop equalisation: a pruned wavelet backend advertises the
        # known per-bin attenuation of the dropped band; dividing it back
        # out at the read bins removes the systematic spectral tilt.
        gains = self._backend_gains()
        if gains is not None:
            z_pos = z_pos * gains[m]
            z_neg = z_neg * gains[ndim - m]
        data_ft = 0.5 * (z_pos + np.conj(z_neg))
        win_ft = -0.5j * (z_pos - np.conj(z_neg))

        cx, sx = data_ft.real, -data_ft.imag
        c2, s2 = win_ft.real, -win_ft.imag
        hypo = np.maximum(np.hypot(c2, s2), 1e-30)
        hc2wt = 0.5 * c2 / hypo
        hs2wt = 0.5 * s2 / hypo
        cwt = np.sqrt(np.clip(0.5 + hc2wt, 0.0, None))
        swt = np.sign(hs2wt) * np.sqrt(np.clip(0.5 - hc2wt, 0.0, None))
        den_c = 0.5 * n + hc2wt * c2 + hs2wt * s2
        den_s = n - den_c
        den_c = np.maximum(den_c, 1e-30)
        den_s = np.maximum(den_s, 1e-30)
        cterm = (cwt * cx + swt * sx) ** 2 / den_c
        sterm = (cwt * sx - swt * cx) ** 2 / den_s
        raw = cterm + sterm
        if self.scaling == "standard":
            power = raw / (2.0 * variance)
        else:
            power = raw / n

        counts = None
        if count_ops:
            counts = sum(
                self._non_fft_counts(n, nout).values(), fft_counts
            )
        return LombSpectrum(
            frequencies=df * m,
            power=power,
            mean=mean,
            variance=variance,
            n_samples=n,
            duration=duration,
            counts=counts,
        )

    # ------------------------------------------------------------------

    def _backend_gains(self) -> np.ndarray | None:
        gains_method = getattr(self.backend, "bin_gains", None)
        if gains_method is None:
            return None
        return gains_method()

    def _non_fft_counts(self, n_samples: int, nout: int) -> dict[str, OpCounts]:
        counts = {
            "extirpolation": BLOCK_COSTS["extirpolation_per_sample"].scaled(
                n_samples
            ),
            "moments": BLOCK_COSTS["moments_per_sample"].scaled(n_samples),
            "unpack": BLOCK_COSTS["unpack_per_bin"].scaled(nout),
            "lomb_combine": BLOCK_COSTS["lomb_combine_per_bin"].scaled(nout),
        }
        if self._backend_gains() is not None:
            # Two complex bins per output frequency, 2 real mults each.
            counts["equalizer"] = OpCounts(mults=4).scaled(nout)
        return counts

    def count_breakdown(self, times, values) -> dict[str, OpCounts]:
        """Per-block operation counts for one window (Fig. 1b input)."""
        t = as_1d_float_array(times, "times", min_length=4)
        duration = float(t[-1] - t[0])
        _df, nout = self._grid(duration, t.size)
        breakdown = dict(self._non_fft_counts(t.size, nout))
        spectrum_counts = self.backend.static_counts()
        breakdown["fft"] = spectrum_counts
        return breakdown

    def static_counts(self, n_samples: int, duration: float) -> OpCounts:
        """Design-time per-window cost for a nominal window shape."""
        _df, nout = self._grid(float(duration), int(n_samples))
        non_fft = self._non_fft_counts(int(n_samples), nout)
        return sum(non_fft.values(), self.backend.static_counts())
