"""Fast-Lomb periodogram (Press-Rybicki) with a pluggable FFT kernel.

The direct Lomb method costs O(N_samples x N_freq) trigonometric sums.
Press & Rybicki's algorithm [10 in the paper] extirpolates the samples
onto a uniform workspace, evaluates the four required sums with FFTs and
combines them per frequency.  The paper's PSA system fixes the workspace
at N = 512, packs the data and window workspaces into **one complex FFT**
and swaps that FFT between the conventional split-radix kernel and the
pruned wavelet kernel — which is exactly what this class does through the
:class:`~repro.ffts.backends.FFTBackend` protocol.

Operation accounting covers every pipeline block (extirpolation, moment
computation, FFT, spectrum unpacking, Lomb combination) so the platform
model can reproduce the Fig. 1(b) energy breakdown.

Two execution paths produce the same spectra:

* :meth:`FastLomb.periodogram` — one window at a time (the sequential
  oracle the batched path is tested against),
* :meth:`FastLomb.periodogram_batch` — many windows at once.  Windows
  are grouped by frequency-grid length, extirpolated with one
  scatter-add over a flattened ``(window, cell)`` space, transformed
  through the backend's ``transform_batch`` and combined as dense
  ``(n_windows, nout)`` array operations.  Backends without a batch
  entry point fall back to sequential per-window calls.

Two execution fast paths sit on top (both produce ``np.allclose``
spectra and identical modelled op counts):

* the **fused real path** (``fused_real``): plain-FFT backends expose
  ``rfft`` / ``rfft_batch`` — resolved through the execution-provider
  layer (:mod:`repro.ffts.providers`) — and the two real workspaces
  skip the pack/complex-FFT/unpack stage entirely,
* the **matrix path** (:meth:`FastLomb.periodogram_batch_matrix`):
  uniform window layouts enter the dense kernel as zero-copy strided
  views without per-window slicing or padding copies.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array, require_power_of_two
from ..envpins import CHUNK_ENV_VAR as _CHUNK_ENV_VAR
from ..envpins import chunk_env_pin
from ..errors import ConfigurationError, SignalError
from ..ffts.backends import FFTBackend
from ..ffts.opcount import OpCounts
from ..ffts.plancache import split_radix_plan
from ..perf.profiler import span as _profile_span
from ..perf.workspace import carve, scratch
from .extirpolation import DEFAULT_ORDER, extirpolate, extirpolate_batch

__all__ = [
    "FastLomb",
    "LombSpectrum",
    "BLOCK_COSTS",
    "get_batch_chunk_windows",
    "set_batch_chunk_windows",
]

#: Fallback windows-per-sub-batch of the batched execution path when the
#: host cannot be probed (the PR 1 value, measured on one development
#: machine).  The effective value is resolved per host by
#: :func:`get_batch_chunk_windows`; chunking keeps the ``(rows, N)``
#: workspaces and extirpolation intermediates cache-resident — a 24 h
#: Holter run in one monolithic batch is ~35 % slower than chunks of
#: this size.
BATCH_CHUNK_WINDOWS = 256

_chunk_override: int | None = None
_chunk_tuned: dict[int, int] = {}


def set_batch_chunk_windows(value: int | None) -> None:
    """Pin the batched sub-batch size for this process.

    ``None`` clears the pin and re-enables per-host auto-tuning.  The
    fleet engine pins every worker to the parent's resolved value so a
    cohort runs with one consistent chunk size; results never depend on
    it (batch rows are independent).
    """
    global _chunk_override
    if value is None:
        _chunk_override = None
        return
    value = int(value)
    if value < 1:
        raise ConfigurationError(
            f"batch chunk size must be >= 1, got {value}"
        )
    _chunk_override = value


def get_chunk_override() -> int | None:
    """The explicit per-process pin, if any (used to save/restore it)."""
    return _chunk_override


@contextmanager
def pinned_execution(provider: str | None, chunk_windows: int | None):
    """Install a provider/chunk pin pair for the calling block.

    The one save-set-restore implementation every execution layer that
    runs under resolved settings (the engine facade, the fleet runner's
    in-process paths) shares: the previous pins are restored on exit,
    so pinned blocks never leak state into code that did not ask for
    them.
    """
    from ..ffts.providers.registry import (
        get_default_provider_name,
        set_default_provider,
    )

    previous_provider = get_default_provider_name()
    previous_chunk = get_chunk_override()
    set_default_provider(provider)
    set_batch_chunk_windows(chunk_windows)
    try:
        yield
    finally:
        set_default_provider(previous_provider)
        set_batch_chunk_windows(previous_chunk)


def get_batch_chunk_windows(workspace_size: int = 512) -> int:
    """Effective windows-per-sub-batch for this host and workspace size.

    Resolution order: an explicit :func:`set_batch_chunk_windows` pin,
    the ``REPRO_BATCH_CHUNK_WINDOWS`` environment variable, then the
    lazily-run per-host auto-tuner
    (:func:`repro.fleet.tuning.autotune_chunk_windows`, memoised per
    workspace size), falling back to :data:`BATCH_CHUNK_WINDOWS`.
    """
    if _chunk_override is not None:
        return _chunk_override
    env = chunk_env_pin()
    if env is not None:
        return env
    tuned = _chunk_tuned.get(workspace_size)
    if tuned is None:
        from ..fleet.tuning import autotune_chunk_windows

        tuned = autotune_chunk_windows(workspace_size).chunk_windows
        _chunk_tuned[workspace_size] = tuned
    return tuned

#: Per-unit operation costs of the non-FFT pipeline blocks.  Divisions and
#: square roots are expanded to 4 multiplications each, the usual cost of
#: the iterative routines on a multiplier-only embedded core.
BLOCK_COSTS = {
    # Per input sample: position scaling for both workspaces plus two
    # order-4 Lagrange spreads (weight products, division, accumulate).
    "extirpolation_per_sample": OpCounts(mults=26, adds=9),
    # Per input sample: running mean and variance accumulation.
    "moments_per_sample": OpCounts(mults=1, adds=3),
    # Per frequency bin: unpacking the two real spectra from the packed
    # complex FFT output (two complex adds + two halvings each).
    "unpack_per_bin": OpCounts(mults=4, adds=4),
    # Per frequency bin: hypotenuse, tau rotation, numerators/denominators
    # and the final normalisation (incl. 3 sqrt + 4 div at 4 mults each).
    "lomb_combine_per_bin": OpCounts(mults=24, adds=9),
}


@dataclass(frozen=True)
class LombSpectrum:
    """Result of one Fast-Lomb evaluation.

    Attributes
    ----------
    frequencies:
        Probe frequencies in Hz (uniform grid ``m * df``).
    power:
        Periodogram values; normalisation per the ``scaling`` option of
        :class:`FastLomb`.
    mean, variance:
        Sample moments of the analysed values.
    n_samples:
        Number of irregular samples in the window.
    duration:
        Window time span in seconds.
    counts:
        Executed operation counts (``None`` unless requested).
    """

    frequencies: np.ndarray
    power: np.ndarray
    mean: float
    variance: float
    n_samples: int
    duration: float
    counts: OpCounts | None = None

    def band_power(self, low: float, high: float) -> float:
        """Integrated power in ``[low, high)`` Hz (rectangle rule)."""
        if high <= low:
            raise SignalError(f"empty band [{low}, {high})")
        mask = (self.frequencies >= low) & (self.frequencies < high)
        if self.frequencies.size < 2:
            raise SignalError("spectrum too short for band integration")
        df = float(self.frequencies[1] - self.frequencies[0])
        return float(np.sum(self.power[mask]) * df)


@dataclass(frozen=True)
class _WindowPlan:
    """Prepared per-window quantities awaiting (batched) extirpolation."""

    n: int
    duration: float
    df: float
    nout: int
    mean: float
    variance: float
    centered: np.ndarray
    pos_data: np.ndarray
    pos_window: np.ndarray


class FastLomb:
    """Press-Rybicki Fast-Lomb analyser with a fixed-size FFT workspace.

    Parameters
    ----------
    workspace_size:
        FFT length N (power of two); the paper uses 512.
    oversample:
        Frequency oversampling factor (``df = 1 / (oversample * T)``).
        The default 2.0 reproduces the paper's geometry: a 2-minute
        window of ~117 beats extirpolates onto the first ~256 cells of
        the 512-cell workspace (Fig. 3a).
    max_frequency:
        Highest probe frequency in Hz; ``None`` extends the grid to the
        pseudo-Nyquist limit allowed by the workspace.
    order:
        Extirpolation (Lagrange) order, 4 as in Numerical Recipes.
    backend:
        FFT kernel; defaults to the conventional
        :class:`~repro.ffts.backends.SplitRadixFFT`.  Pass a
        :class:`~repro.ffts.wavelet_fft.WaveletFFT` to get the paper's
        proposed system.
    scaling:
        ``"standard"`` — classic Lomb normalisation by ``2 * variance``;
        ``"denormalized"`` — multiplied back by ``2 * variance / n``
        (the paper's Welch de-normalisation, suitable for averaging).
    fused_real:
        The fused real-input path: the two real workspaces go through
        the backend's ``rfft`` / ``rfft_batch`` instead of being packed
        into one complex FFT and unpacked — algebraically the same
        spectra (``np.allclose``) at roughly half the complex work,
        with no pack/unpack stage.  ``None`` (default) enables it
        automatically when the backend exposes the rfft entry points
        and performs no spectrum post-processing (pruned wavelet
        backends equalise the full packed spectrum, so they keep the
        packed path).  Modelled operation counts are unchanged either
        way — the sensor node is costed on the paper's packed pipeline.
    """

    def __init__(
        self,
        workspace_size: int = 512,
        oversample: float = 2.0,
        max_frequency: float | None = None,
        order: int = DEFAULT_ORDER,
        backend: FFTBackend | None = None,
        scaling: str = "standard",
        fused_real: bool | None = None,
    ):
        self.workspace_size = require_power_of_two(workspace_size, "workspace_size")
        if oversample < 1.0:
            raise ConfigurationError(
                f"oversample must be >= 1, got {oversample}"
            )
        self.oversample = float(oversample)
        if max_frequency is not None and max_frequency <= 0:
            raise ConfigurationError(
                f"max_frequency must be positive, got {max_frequency}"
            )
        self.max_frequency = max_frequency
        self.order = int(order)
        if backend is None:
            # Shared, cached plan: repeated FastLomb construction reuses
            # the same stateless split-radix kernel.
            backend = split_radix_plan(self.workspace_size)
        if backend.n != self.workspace_size:
            raise ConfigurationError(
                f"backend size {backend.n} != workspace size {self.workspace_size}"
            )
        self.backend = backend
        if scaling not in ("standard", "denormalized"):
            raise ConfigurationError(
                f"scaling must be 'standard' or 'denormalized', got {scaling!r}"
            )
        self.scaling = scaling
        rfft_capable = hasattr(self.backend, "rfft") and hasattr(
            self.backend, "rfft_batch"
        )
        if fused_real is None:
            fused_real = rfft_capable and self._backend_gains() is None
        elif fused_real:
            if not rfft_capable:
                raise ConfigurationError(
                    "fused_real requires a backend with rfft/rfft_batch"
                )
            if self._backend_gains() is not None:
                raise ConfigurationError(
                    "fused_real is incompatible with spectrum-equalising "
                    "(band-drop) backends"
                )
        self.fused_real = bool(fused_real)

    # ------------------------------------------------------------------

    def _grid(self, duration: float, n_samples: int) -> tuple[float, int]:
        df = 1.0 / (self.oversample * duration)
        # The extirpolation grid has ndim*df samples per second; frequencies
        # beyond its Nyquist limit (ndim/2 bins) would alias, so a window
        # that is too long for the fixed workspace must be rejected rather
        # than silently truncated — the paper's 2-minute windows with
        # N = 512 keep the full 0-0.4 Hz HRV range well inside the limit.
        limit = self.workspace_size // 2 - 1
        if self.max_frequency is None:
            nyquist_like = 0.5 * n_samples / duration
            nout = min(int(np.floor(nyquist_like / df)), limit)
        else:
            nout = int(np.floor(self.max_frequency / df))
            if nout > limit:
                raise SignalError(
                    f"max_frequency {self.max_frequency} Hz needs {nout} bins "
                    f"but a {self.workspace_size}-point workspace over a "
                    f"{duration:.0f} s window supports only {limit}; use "
                    "shorter (Welch) windows or a larger workspace"
                )
        if nout < 1:
            raise SignalError("window too short: empty frequency grid")
        return df, nout

    def _window_inputs(
        self, times, values, validate: bool
    ) -> tuple[np.ndarray, np.ndarray, float, float, int]:
        """Validate one window and derive its grid geometry.

        Shared prefix of the sequential and batched paths, so the two
        can never drift apart: returns ``(t, x, duration, df, nout)``.
        ``validate=False`` skips the array checks for callers (the Welch
        driver) that already validated the parent recording.
        """
        if validate:
            t = as_1d_float_array(times, "times", min_length=4)
            x = as_1d_float_array(values, "values", min_length=4)
            if t.size != x.size:
                raise SignalError(
                    f"times and values must match, got {t.size} and {x.size}"
                )
            if np.any(np.diff(t) <= 0):
                raise SignalError("times must be strictly increasing")
        else:
            t = np.asarray(times, dtype=np.float64)
            x = np.asarray(values, dtype=np.float64)
        duration = float(t[-1] - t[0])
        if duration <= 0:
            raise SignalError("window duration must be positive")
        df, nout = self._grid(duration, t.size)
        return t, x, duration, df, nout

    def _prepare_window(self, times, values) -> "_WindowPlan":
        """Per-window work of the sequential path, up to extirpolation.

        Validation, grid geometry, sample moments and workspace
        positions; the batched path performs the same steps vectorised
        over a whole window group in :meth:`_periodogram_group`.
        """
        t, x, duration, df, nout = self._window_inputs(
            times, values, validate=True
        )
        n = t.size

        mean = float(x.mean())
        variance = float(np.var(x, ddof=1))
        if variance <= 0:
            raise SignalError("window has zero variance")
        centered = x - mean

        ndim = self.workspace_size
        fac = ndim * df
        pos_data = (t - t[0]) * fac
        pos_data = np.clip(pos_data, 0.0, np.nextafter(float(ndim), 0.0))
        pos_window = np.mod(2.0 * pos_data, float(ndim))
        return _WindowPlan(
            n=n,
            duration=duration,
            df=df,
            nout=nout,
            mean=mean,
            variance=variance,
            centered=centered,
            pos_data=pos_data,
            pos_window=pos_window,
        )

    def periodogram(
        self, times, values, count_ops: bool = False
    ) -> LombSpectrum:
        """Fast-Lomb periodogram of one window of irregular samples."""
        plan = self._prepare_window(times, values)
        n = plan.n
        df, nout = plan.df, plan.nout
        mean, variance = plan.mean, plan.variance
        duration = plan.duration

        ndim = self.workspace_size
        wk1 = extirpolate(plan.centered, plan.pos_data, ndim, self.order)
        wk2 = extirpolate(np.ones(n), plan.pos_window, ndim, self.order)

        m = np.arange(1, nout + 1)
        if self.fused_real:
            # Fused real path: for real workspaces the packed complex
            # FFT plus unpack is algebraically rfft(wk1)[m] and
            # rfft(wk2)[m] directly; counts stay the modelled packed
            # pipeline (static for a plain-FFT backend).
            data_ft = self.backend.rfft(wk1)[m]
            win_ft = self.backend.rfft(wk2)[m]
            fft_counts = self.backend.static_counts() if count_ops else None
        else:
            packed = wk1 + 1j * wk2
            if count_ops:
                spectrum, fft_counts = self.backend.transform_with_counts(
                    packed
                )
            else:
                spectrum = self.backend.transform(packed)
                fft_counts = None

            z_pos = spectrum[m]
            z_neg = spectrum[ndim - m]
            # Band-drop equalisation: a pruned wavelet backend advertises
            # the known per-bin attenuation of the dropped band; dividing
            # it back out at the read bins removes the systematic
            # spectral tilt.
            gains = self._backend_gains()
            if gains is not None:
                z_pos = z_pos * gains[m]
                z_neg = z_neg * gains[ndim - m]
            data_ft = 0.5 * (z_pos + np.conj(z_neg))
            win_ft = -0.5j * (z_pos - np.conj(z_neg))

        cx, sx = data_ft.real, -data_ft.imag
        c2, s2 = win_ft.real, -win_ft.imag
        hypo = np.maximum(np.hypot(c2, s2), 1e-30)
        hc2wt = 0.5 * c2 / hypo
        hs2wt = 0.5 * s2 / hypo
        cwt = np.sqrt(np.clip(0.5 + hc2wt, 0.0, None))
        swt = np.sign(hs2wt) * np.sqrt(np.clip(0.5 - hc2wt, 0.0, None))
        den_c = 0.5 * n + hc2wt * c2 + hs2wt * s2
        den_s = n - den_c
        den_c = np.maximum(den_c, 1e-30)
        den_s = np.maximum(den_s, 1e-30)
        cterm = (cwt * cx + swt * sx) ** 2 / den_c
        sterm = (cwt * sx - swt * cx) ** 2 / den_s
        raw = cterm + sterm
        if self.scaling == "standard":
            power = raw / (2.0 * variance)
        else:
            power = raw / n

        counts = None
        if count_ops:
            counts = sum(
                self._non_fft_counts(n, nout).values(), fft_counts
            )
        return LombSpectrum(
            frequencies=df * m,
            power=power,
            mean=mean,
            variance=variance,
            n_samples=n,
            duration=duration,
            counts=counts,
        )

    # ------------------------------------------------------------------
    # Batched execution
    # ------------------------------------------------------------------

    def periodogram_batch(
        self, windows, count_ops: bool = False, validate: bool = True
    ) -> list[LombSpectrum]:
        """Fast-Lomb periodograms of many windows in one batched pass.

        Parameters
        ----------
        windows:
            Sequence of ``(times, values)`` pairs, one per window.
        count_ops:
            Attach executed per-window :class:`OpCounts`.
        validate:
            Per-window array validation; pass ``False`` only when the
            caller has already validated the parent recording (the Welch
            driver does).

        Windows are grouped by frequency-grid length ``nout`` (windows of
        different durations probe different grids) and each group runs as
        dense ``(n_windows, N)`` array operations: one flattened
        scatter-add extirpolation, one call into the backend's
        ``transform_batch`` and a fully vectorised Lomb combine.  Results
        are returned in input order and match :meth:`periodogram`
        window-for-window (same spectra, same operation counts).

        Backends that do not implement ``transform_batch`` are driven
        through the sequential path transparently.
        """
        pairs = list(windows)
        # The count_ops branch needs the counting batch entry point too;
        # kernels implementing only part of the batch protocol fall back
        # to the sequential path, as the module docstring promises.  On
        # the fused real path the dense kernel only ever calls
        # rfft_batch (guaranteed at construction), so no fallback is
        # needed — mirroring periodogram_batch_matrix.
        batch_methods = ["transform_batch"]
        if count_ops:
            batch_methods.append("transform_batch_with_counts")
        if not self.fused_real and not all(
            hasattr(self.backend, name) for name in batch_methods
        ):
            return [
                self.periodogram(t, x, count_ops=count_ops) for t, x in pairs
            ]
        arrays: list[tuple[np.ndarray, np.ndarray]] = []
        metas: list[tuple[int, float, float, int]] = []
        for times, values in pairs:
            t, x, duration, df, nout = self._window_inputs(
                times, values, validate
            )
            arrays.append((t, x))
            metas.append((t.size, duration, df, nout))
        groups: dict[int, list[int]] = {}
        for i, meta in enumerate(metas):
            groups.setdefault(meta[3], []).append(i)
        results: list[LombSpectrum | None] = [None] * len(pairs)
        chunk_windows = get_batch_chunk_windows(self.workspace_size)
        for nout, indices in groups.items():
            # Bounded sub-batches keep the dense intermediates inside the
            # CPU caches; one monolithic multi-hour batch is measurably
            # slower than cache-sized chunks (rows are independent, so
            # chunking cannot change any result).
            for lo in range(0, len(indices), chunk_windows):
                chunk = indices[lo : lo + chunk_windows]
                spectra = self._periodogram_group(
                    [arrays[i] for i in chunk],
                    [metas[i] for i in chunk],
                    nout,
                    count_ops,
                )
                for i, spectrum in zip(chunk, spectra):
                    results[i] = spectrum
        return results

    def periodogram_batch_matrix(
        self, times, values, count_ops: bool = False
    ) -> list[LombSpectrum]:
        """Batched Fast-Lomb over a dense, equal-length window matrix.

        The zero-copy fast path for uniformly-sampled recordings:
        ``times`` / ``values`` are ``(n_windows, L)`` matrices —
        typically strided ``sliding_window_view`` views produced by
        :func:`repro.lomb.welch.uniform_window_matrix` — and rows go
        straight into the same dense kernel as
        :meth:`periodogram_batch` without per-window slicing, padding
        or copying.  Results match the pair-based path row-for-row
        (same spectra, same operation counts); the caller is expected
        to have validated the parent recording.
        """
        t_mat = np.asarray(times, dtype=np.float64)
        x_mat = np.asarray(values, dtype=np.float64)
        if t_mat.ndim != 2 or t_mat.shape != x_mat.shape:
            raise SignalError(
                "times and values must be matching 2-D matrices, got "
                f"shapes {t_mat.shape} and {x_mat.shape}"
            )
        rows, width = t_mat.shape
        if rows == 0:
            return []
        if width < 4:
            raise SignalError("windows too short: need at least 4 samples")
        # Same capability fallback as periodogram_batch: backends that
        # only implement the sequential protocol (and are not on the
        # fused real path) are driven window-by-window.
        batch_methods = ["transform_batch"]
        if count_ops:
            batch_methods.append("transform_batch_with_counts")
        if not self.fused_real and not all(
            hasattr(self.backend, name) for name in batch_methods
        ):
            return [
                self.periodogram(t_mat[i], x_mat[i], count_ops=count_ops)
                for i in range(rows)
            ]
        durations = t_mat[:, -1] - t_mat[:, 0]
        if np.any(durations <= 0):
            raise SignalError("window duration must be positive")
        dfs, nouts = self._grid_rows(durations, width)
        metas = [
            (width, float(durations[i]), float(dfs[i]), int(nouts[i]))
            for i in range(rows)
        ]
        ns = np.full(rows, width, dtype=np.int64)
        results: list[LombSpectrum | None] = [None] * rows
        chunk_windows = get_batch_chunk_windows(self.workspace_size)
        for nout in np.unique(nouts):
            indices = np.flatnonzero(nouts == nout)
            for lo in range(0, indices.size, chunk_windows):
                chunk = indices[lo : lo + chunk_windows]
                # Contiguous runs keep the strided views intact (the
                # overwhelmingly common case: one frequency grid for
                # the whole recording); a fragmented group falls back
                # to a gather copy of just those rows.
                if chunk.size == chunk[-1] - chunk[0] + 1:
                    sel: slice | np.ndarray = slice(
                        int(chunk[0]), int(chunk[-1]) + 1
                    )
                else:
                    sel = chunk
                spectra = self._periodogram_group_dense(
                    t_mat[sel],
                    x_mat[sel],
                    ns[sel],
                    [metas[i] for i in chunk],
                    int(nout),
                    count_ops,
                )
                for i, spectrum in zip(chunk, spectra):
                    results[i] = spectrum
        return results

    def _grid_rows(
        self, durations: np.ndarray, n_samples: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`_grid` over per-row window durations.

        Same formulas, applied elementwise, so every row gets exactly
        the grid the scalar path would have derived for it.
        """
        dfs = 1.0 / (self.oversample * durations)
        limit = self.workspace_size // 2 - 1
        if self.max_frequency is None:
            nyquist_like = 0.5 * n_samples / durations
            nouts = np.minimum(
                np.floor(nyquist_like / dfs).astype(np.int64), limit
            )
        else:
            nouts = np.floor(self.max_frequency / dfs).astype(np.int64)
            if np.any(nouts > limit):
                raise SignalError(
                    f"max_frequency {self.max_frequency} Hz needs "
                    f"{int(nouts.max())} bins but a "
                    f"{self.workspace_size}-point workspace supports only "
                    f"{limit}; use shorter (Welch) windows or a larger "
                    "workspace"
                )
        if np.any(nouts < 1):
            raise SignalError("window too short: empty frequency grid")
        return dfs, nouts

    def _periodogram_group(
        self,
        arrays: list[tuple[np.ndarray, np.ndarray]],
        metas: list[tuple[int, float, float, int]],
        nout: int,
        count_ops: bool,
    ) -> list[LombSpectrum]:
        """Batched pipeline for windows sharing one frequency-grid length.

        Ragged windows are right-padded to the longest beat count in the
        group; padding enters the extirpolation as zero-valued samples
        (contributing nothing) and the Lomb combine uses per-row sample
        counts, so padding never leaks into the results.  The dense
        kernel itself lives in :meth:`_periodogram_group_dense`, which
        the zero-copy uniform-recording path
        (:meth:`periodogram_batch_matrix`) enters directly without this
        padding copy.
        """
        rows = len(arrays)
        ns = np.array([meta[0] for meta in metas], dtype=np.int64)
        max_n = int(ns.max())
        # Pad width quantised up to a multiple of 64 columns: results
        # are already pad-width-independent (the per-row slices below
        # and the lengths masks keep padding out of every reduction —
        # the same invariant that makes fleet shard merging exact), and
        # a handful of stable widths keeps the workspace arena keyed on
        # a few trailing shapes instead of one per distinct
        # longest-window beat count.
        pad_n = ((max_n + 63) // 64) * 64
        # The padded matrices are pure kernel inputs (read, never
        # escaping into results), so they lease from the active arena;
        # the dense kernel below has released all of its own borrows by
        # the time this scratch closes.
        with scratch() as ws:
            t_pad, x_pad = ws.take_block(2, (rows, pad_n), zero=True)
            for i, (t, x) in enumerate(arrays):
                k = t.size
                t_pad[i, :k] = t
                x_pad[i, :k] = x
            return self._periodogram_group_dense(
                t_pad, x_pad, ns, metas, nout, count_ops
            )

    def _periodogram_group_dense(
        self,
        t_pad: np.ndarray,
        x_pad: np.ndarray,
        ns: np.ndarray,
        metas: list[tuple[int, float, float, int]],
        nout: int,
        count_ops: bool,
    ) -> list[LombSpectrum]:
        """Dense ``(rows, max_n)`` kernel shared by both batch entries.

        ``t_pad`` / ``x_pad`` may be strided views (the
        ``sliding_window_view`` fast path) — they are read, never
        written.  Window means stay per-row ``ndarray.mean`` calls so
        the centred samples — and hence dynamic-pruning decisions and
        operation counts — are bit-identical to the sequential path;
        variances are re-derived from the centred batch (they only
        scale the output power).

        Every intermediate (masks, workspaces, FFT outputs, the dozen
        Lomb-combine temporaries) is leased from the active workspace
        arena when one is installed, and each formula is staged through
        ``out=`` ufunc calls that reproduce the original expression's
        operation structure exactly — same operations, same operand
        order, same rounding — so arena-on and arena-off results are
        bit-for-bit identical.  Only ``power`` and the per-spectrum
        frequency grids are freshly allocated: they escape into the
        returned :class:`LombSpectrum` objects.
        """
        ndim = self.workspace_size
        rows, max_n = t_pad.shape
        dfs = np.array([meta[2] for meta in metas])
        with scratch() as ws:
            means, variances = ws.take_block(2, (rows,))
            if np.all(ns == max_n):
                # Equal-length group (every uniform recording): one axis
                # reduction replaces the per-row loop.  numpy's pairwise
                # summation over the reduction axis is the same per row
                # as the 1-D call, so the means — and everything
                # downstream, dynamic-pruning decisions included — stay
                # bit-identical.
                x_pad.mean(axis=1, out=means)
            else:
                for i in range(rows):
                    means[i] = x_pad[i, : ns[i]].mean()
            valid, invalid = ws.take_block(2, (rows, max_n), np.bool_)
            centered, pos_data, pos_window, valid_f = ws.take_block(
                4, (rows, max_n)
            )
            np.less(np.arange(max_n)[None, :], ns[:, None], out=valid)
            np.subtract(x_pad, means[:, None], out=centered)
            np.logical_not(valid, out=invalid)
            np.copyto(centered, 0.0, where=invalid)
            # Per-row dot products over the exact (unpadded) slices: a
            # padded reduction would round differently depending on the
            # batch's pad width, making results depend on how windows
            # were grouped into batches — which would break the fleet
            # engine's bit-identical shard merging.
            for i in range(rows):
                c = centered[i, : ns[i]]
                variances[i] = c @ c
            np.divide(variances, ns - 1, out=variances)
            if np.any(variances <= 0):
                raise SignalError("window has zero variance")
            # Padded slots sit at t = 0 and clip to position 0; the
            # lengths mask keeps them out of the workspaces regardless.
            np.subtract(t_pad, t_pad[:, :1], out=pos_data)
            np.multiply(pos_data, (ndim * dfs)[:, None], out=pos_data)
            np.clip(
                pos_data, 0.0, np.nextafter(float(ndim), 0.0), out=pos_data
            )
            np.multiply(pos_data, 2.0, out=pos_window)
            np.mod(pos_window, float(ndim), out=pos_window)
            np.copyto(valid_f, valid)
            wk1, wk2 = ws.take_block(2, (rows, ndim))
            with _profile_span("extirpolate"):
                extirpolate_batch(
                    centered, pos_data, ndim, self.order, lengths=ns, out=wk1
                )
                extirpolate_batch(
                    valid_f, pos_window, ndim, self.order, lengths=ns, out=wk2
                )

            m = np.arange(1, nout + 1)
            # Providers advertise out= support; anything else (the
            # explicit oracle, the pruned wavelet kernel, third-party
            # providers with the pre-out= signature) transparently
            # keeps its fresh-allocation behaviour.
            backend_out = getattr(self.backend, "supports_out", False)
            with _profile_span("fft"):
                if self.fused_real:
                    # Fused real path (see :meth:`periodogram`): two
                    # batched rffts instead of pack + complex FFT +
                    # unpack.  ``m`` is contiguous, so the bin
                    # selections are strided views, not gather copies.
                    half = ndim // 2 + 1
                    if backend_out:
                        r1_buf, r2_buf = ws.take_block(
                            2, (rows, half), np.complex128
                        )
                        r1 = self.backend.rfft_batch(wk1, out=r1_buf)
                        r2 = self.backend.rfft_batch(wk2, out=r2_buf)
                    else:
                        r1 = self.backend.rfft_batch(wk1)
                        r2 = self.backend.rfft_batch(wk2)
                    data_ft = r1[:, 1 : nout + 1]
                    win_ft = r2[:, 1 : nout + 1]
                    fft_counts = (
                        (self.backend.static_counts(),) * rows
                        if count_ops
                        else None
                    )
                else:
                    packed = ws.take((rows, ndim), np.complex128)
                    packed.real[:] = wk1
                    packed.imag[:] = wk2
                    if count_ops:
                        spectrum, fft_counts = (
                            self.backend.transform_batch_with_counts(packed)
                        )
                    else:
                        if backend_out:
                            spectrum = self.backend.transform_batch(
                                packed,
                                out=ws.take((rows, ndim), np.complex128),
                            )
                        else:
                            spectrum = self.backend.transform_batch(packed)
                        fft_counts = None

                    # z_pos covers bins 1..nout; z_neg their mirrors
                    # ndim-1 down to ndim-nout — both as views.
                    z_pos = spectrum[:, 1 : nout + 1]
                    z_neg = spectrum[:, ndim - 1 : ndim - nout - 1 : -1]
                    gains = self._backend_gains()
                    if gains is not None:
                        zp, zn = ws.take_block(2, (rows, nout), np.complex128)
                        np.multiply(z_pos, gains[1 : nout + 1], out=zp)
                        np.multiply(
                            z_neg,
                            gains[ndim - 1 : ndim - nout - 1 : -1],
                            out=zn,
                        )
                        z_pos, z_neg = zp, zn
                    conj_neg, data_ft, win_ft = ws.take_block(
                        3, (rows, nout), np.complex128
                    )
                    np.conjugate(z_neg, out=conj_neg)
                    np.add(z_pos, conj_neg, out=data_ft)
                    np.multiply(data_ft, 0.5, out=data_ft)
                    np.subtract(z_pos, conj_neg, out=win_ft)
                    np.multiply(win_ft, -0.5j, out=win_ft)

            with _profile_span("lomb_combine"):
                (
                    sx,
                    s2,
                    hypo,
                    hc2wt,
                    hs2wt,
                    cwt,
                    swt,
                    sgn,
                    prod,
                    den_c,
                    den_s,
                    cterm,
                    sterm,
                ) = ws.take_block(13, (rows, nout))
                cx = data_ft.real
                np.negative(data_ft.imag, out=sx)
                c2 = win_ft.real
                np.negative(win_ft.imag, out=s2)
                np.hypot(c2, s2, out=hypo)
                np.maximum(hypo, 1e-30, out=hypo)
                np.multiply(c2, 0.5, out=hc2wt)
                np.divide(hc2wt, hypo, out=hc2wt)
                np.multiply(s2, 0.5, out=hs2wt)
                np.divide(hs2wt, hypo, out=hs2wt)
                np.add(hc2wt, 0.5, out=cwt)
                np.clip(cwt, 0.0, None, out=cwt)
                np.sqrt(cwt, out=cwt)
                np.subtract(0.5, hc2wt, out=swt)
                np.clip(swt, 0.0, None, out=swt)
                np.sqrt(swt, out=swt)
                np.sign(hs2wt, out=sgn)
                np.multiply(sgn, swt, out=swt)
                nn = ns[:, None].astype(np.float64)
                half_nn = 0.5 * nn
                np.multiply(hc2wt, c2, out=prod)
                np.add(half_nn, prod, out=den_c)
                np.multiply(hs2wt, s2, out=prod)
                np.add(den_c, prod, out=den_c)
                np.subtract(nn, den_c, out=den_s)
                np.maximum(den_c, 1e-30, out=den_c)
                np.maximum(den_s, 1e-30, out=den_s)
                np.multiply(cwt, cx, out=cterm)
                np.multiply(swt, sx, out=prod)
                np.add(cterm, prod, out=cterm)
                np.square(cterm, out=cterm)
                np.divide(cterm, den_c, out=cterm)
                np.multiply(cwt, sx, out=sterm)
                np.multiply(swt, cx, out=prod)
                np.subtract(sterm, prod, out=sterm)
                np.square(sterm, out=sterm)
                np.divide(sterm, den_s, out=sterm)
                raw = cterm
                np.add(cterm, sterm, out=raw)
                # The power matrix escapes into the returned spectra, so
                # it is the one combine output allocated fresh.
                power = np.empty((rows, nout))
                if self.scaling == "standard":
                    np.divide(raw, 2.0 * variances[:, None], out=power)
                else:
                    np.divide(raw, nn, out=power)

            spectra: list[LombSpectrum] = []
            for i, meta in enumerate(metas):
                n, duration, df, _nout = meta
                counts = None
                if count_ops:
                    counts = sum(
                        self._non_fft_counts(n, nout).values(), fft_counts[i]
                    )
                spectra.append(
                    LombSpectrum(
                        frequencies=df * m,
                        power=power[i],
                        mean=float(means[i]),
                        variance=float(variances[i]),
                        n_samples=n,
                        duration=duration,
                        counts=counts,
                    )
                )
        return spectra

    # ------------------------------------------------------------------

    def _backend_gains(self) -> np.ndarray | None:
        gains_method = getattr(self.backend, "bin_gains", None)
        if gains_method is None:
            return None
        return gains_method()

    def _non_fft_counts(self, n_samples: int, nout: int) -> dict[str, OpCounts]:
        counts = {
            "extirpolation": BLOCK_COSTS["extirpolation_per_sample"].scaled(
                n_samples
            ),
            "moments": BLOCK_COSTS["moments_per_sample"].scaled(n_samples),
            "unpack": BLOCK_COSTS["unpack_per_bin"].scaled(nout),
            "lomb_combine": BLOCK_COSTS["lomb_combine_per_bin"].scaled(nout),
        }
        if self._backend_gains() is not None:
            # Two complex bins per output frequency, 2 real mults each.
            counts["equalizer"] = OpCounts(mults=4).scaled(nout)
        return counts

    def count_breakdown(self, times, values) -> dict[str, OpCounts]:
        """Per-block operation counts for one window (Fig. 1b input)."""
        t = as_1d_float_array(times, "times", min_length=4)
        duration = float(t[-1] - t[0])
        _df, nout = self._grid(duration, t.size)
        breakdown = dict(self._non_fft_counts(t.size, nout))
        spectrum_counts = self.backend.static_counts()
        breakdown["fft"] = spectrum_counts
        return breakdown

    def static_counts(self, n_samples: int, duration: float) -> OpCounts:
        """Design-time per-window cost for a nominal window shape."""
        _df, nout = self._grid(float(duration), int(n_samples))
        non_fft = self._non_fft_counts(int(n_samples), nout)
        return sum(non_fft.values(), self.backend.static_counts())
