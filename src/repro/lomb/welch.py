"""Welch-Lomb time-frequency analysis (paper Section II.A).

A sliding window (2 minutes with 50 % overlap in the paper) is moved over
the RR-interval series; each window is analysed with Fast-Lomb, and the
per-window periodograms are both kept (the time-frequency distribution
used for hourly monitoring, Section VI.A) and averaged (the Welch
estimate).  The paper's de-normalising factor ``2 sigma^2 / N`` is the
``scaling="denormalized"`` option of :class:`~repro.lomb.fast.FastLomb`,
which lets windows with different variances average consistently.

Execution: by default :meth:`WelchLomb.analyze` slices all windows up
front and drives :meth:`FastLomb.periodogram_batch`, which groups the
windows by frequency-grid shape and processes each group as dense
``(n_windows, N)`` array operations — the whole-recording hot path runs
without a per-window Python loop.  ``batched=False`` keeps the original
sequential loop, which serves as the equivalence oracle (the batched
path produces the same spectra and operation counts window-for-window).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array
from ..errors import ConfigurationError, SignalError
from ..ffts.opcount import OpCounts
from .fast import FastLomb, LombSpectrum

__all__ = ["WelchLomb", "WelchLombResult", "iter_windows"]

#: Fewest beats a window may contain and still be analysed.
MIN_BEATS_PER_WINDOW = 16


def iter_windows(
    times: np.ndarray,
    window_seconds: float,
    overlap: float,
) -> list[tuple[int, int]]:
    """Index ranges ``[start, stop)`` of the sliding analysis windows.

    Windows are laid out on the time axis every
    ``window_seconds * (1 - overlap)`` seconds starting at ``times[0]``;
    a trailing partial window is emitted only if it spans at least half
    the nominal duration.
    """
    t = as_1d_float_array(times, "times", min_length=2)
    if window_seconds <= 0:
        raise ConfigurationError(
            f"window_seconds must be positive, got {window_seconds}"
        )
    if not 0.0 <= overlap < 1.0:
        raise ConfigurationError(f"overlap must be in [0, 1), got {overlap}")
    step = window_seconds * (1.0 - overlap)
    start_times: list[float] = []
    start_time = float(t[0])
    end_time = float(t[-1])
    while start_time < end_time:
        start_times.append(start_time)
        if start_time + window_seconds >= end_time:
            break
        start_time += step
    if not start_times:
        return []
    # One vectorised bisection for all window edges instead of two
    # searchsorted calls per window.
    start_arr = np.asarray(start_times)
    starts = np.searchsorted(t, start_arr, side="left")
    stops = np.searchsorted(t, start_arr + window_seconds, side="left")
    actual_span = np.zeros(starts.size)
    nonempty = stops > starts
    actual_span[nonempty] = t[stops[nonempty] - 1] - t[starts[nonempty]]
    keep = (stops - starts >= 2) & (actual_span >= 0.5 * window_seconds)
    return list(zip(starts[keep].tolist(), stops[keep].tolist()))


@dataclass(frozen=True)
class WelchLombResult:
    """Output of a Welch-Lomb run.

    Attributes
    ----------
    frequencies:
        Common frequency grid (Hz) shared by all windows.
    spectrogram:
        ``(n_windows, n_frequencies)`` per-window periodograms — the
        time-frequency distribution.
    averaged:
        Welch average across windows.
    window_times:
        Centre time (seconds) of every analysed window.
    window_spectra:
        The individual :class:`LombSpectrum` records.
    counts:
        Total executed operation counts (``None`` unless requested).
    skipped_windows:
        Number of windows rejected for having too few beats.
    """

    frequencies: np.ndarray
    spectrogram: np.ndarray
    averaged: np.ndarray
    window_times: np.ndarray
    window_spectra: tuple[LombSpectrum, ...]
    counts: OpCounts | None = None
    skipped_windows: int = 0

    @property
    def n_windows(self) -> int:
        return int(self.spectrogram.shape[0])

    def averaged_spectrum(self) -> LombSpectrum:
        """The Welch average packaged as a :class:`LombSpectrum`."""
        total_samples = sum(s.n_samples for s in self.window_spectra)
        return LombSpectrum(
            frequencies=self.frequencies,
            power=self.averaged,
            mean=float(np.mean([s.mean for s in self.window_spectra])),
            variance=float(np.mean([s.variance for s in self.window_spectra])),
            n_samples=total_samples,
            duration=float(
                self.window_spectra[-1].duration * len(self.window_spectra)
            ),
            counts=self.counts,
        )


class WelchLomb:
    """Sliding-window Welch-Lomb analyser.

    Parameters
    ----------
    analyzer:
        The per-window :class:`FastLomb` engine (its backend decides
        whether this is the conventional or the proposed system).
    window_seconds:
        Nominal window duration; the paper uses 120 s.
    overlap:
        Fractional window overlap; the paper uses 0.5.
    """

    def __init__(
        self,
        analyzer: FastLomb | None = None,
        window_seconds: float = 120.0,
        overlap: float = 0.5,
    ):
        if analyzer is None:
            analyzer = FastLomb(scaling="denormalized")
        self.analyzer = analyzer
        if window_seconds <= 0:
            raise ConfigurationError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        if not 0.0 <= overlap < 1.0:
            raise ConfigurationError(f"overlap must be in [0, 1), got {overlap}")
        self.window_seconds = float(window_seconds)
        self.overlap = float(overlap)

    def analyze(
        self,
        times,
        values,
        count_ops: bool = False,
        batched: bool = True,
    ) -> WelchLombResult:
        """Run the sliding-window analysis over a full recording.

        All windows are interpolated onto the frequency grid of the
        longest-duration window so the spectrogram is rectangular even
        when beat counts differ per window.

        ``batched`` (default) drives all windows through
        :meth:`FastLomb.periodogram_batch`; ``batched=False`` runs the
        original per-window loop.  Both paths produce the same spectra
        and operation counts.
        """
        t = as_1d_float_array(times, "times", min_length=MIN_BEATS_PER_WINDOW)
        x = as_1d_float_array(values, "values", min_length=MIN_BEATS_PER_WINDOW)
        if t.size != x.size:
            raise SignalError(
                f"times and values must match, got {t.size} and {x.size}"
            )
        if np.any(np.diff(t) <= 0):
            raise SignalError("times must be strictly increasing")
        spans = iter_windows(t, self.window_seconds, self.overlap)
        kept: list[tuple[int, int]] = []
        skipped = 0
        for start, stop in spans:
            if stop - start < MIN_BEATS_PER_WINDOW:
                skipped += 1
            else:
                kept.append((start, stop))
        if kept:
            starts = np.array([span[0] for span in kept])
            stops = np.array([span[1] for span in kept])
            centers = 0.5 * (t[starts] + t[stops - 1])
        else:
            centers = np.empty(0)
        windows = [(t[start:stop], x[start:stop]) for start, stop in kept]
        use_batch = batched and hasattr(self.analyzer, "periodogram_batch")
        if use_batch:
            # The recording was validated above; the per-window checks in
            # the sequential entry point would only repeat it.
            spectra: list[LombSpectrum] = self.analyzer.periodogram_batch(
                windows, count_ops=count_ops, validate=False
            )
        else:
            spectra = [
                self.analyzer.periodogram(tw, xw, count_ops=count_ops)
                for tw, xw in windows
            ]
        if not spectra:
            raise SignalError(
                "no analysable windows: recording too short or too sparse"
            )

        reference = max(spectra, key=lambda s: s.frequencies.size)
        grid = reference.frequencies
        rows = np.empty((len(spectra), grid.size))
        for i, spectrum in enumerate(spectra):
            if spectrum.frequencies.size == grid.size:
                rows[i] = spectrum.power
            else:
                rows[i] = np.interp(
                    grid,
                    spectrum.frequencies,
                    spectrum.power,
                    left=0.0,
                    right=0.0,
                )
        counts = None
        if count_ops:
            counts = sum((s.counts for s in spectra), OpCounts())
        return WelchLombResult(
            frequencies=grid,
            spectrogram=rows,
            averaged=rows.mean(axis=0),
            window_times=np.asarray(centers),
            window_spectra=tuple(spectra),
            counts=counts,
            skipped_windows=skipped,
        )
