"""Welch-Lomb time-frequency analysis (paper Section II.A).

A sliding window (2 minutes with 50 % overlap in the paper) is moved over
the RR-interval series; each window is analysed with Fast-Lomb, and the
per-window periodograms are both kept (the time-frequency distribution
used for hourly monitoring, Section VI.A) and averaged (the Welch
estimate).  The paper's de-normalising factor ``2 sigma^2 / N`` is the
``scaling="denormalized"`` option of :class:`~repro.lomb.fast.FastLomb`,
which lets windows with different variances average consistently.

Execution: by default :meth:`WelchLomb.analyze` slices all windows up
front and drives :meth:`FastLomb.periodogram_batch`, which groups the
windows by frequency-grid shape and processes each group as dense
``(n_windows, N)`` array operations — the whole-recording hot path runs
without a per-window Python loop.  ``analyze_windows(batched=False)``
keeps the original sequential loop, which serves as the equivalence
oracle (the batched path produces the same spectra and operation counts
window-for-window).  Execution *policy* — provider, chunk size, worker
processes — lives on the engine facade (:mod:`repro.engine`), which
routes every workload through :func:`analyze_spans`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .._validation import as_1d_float_array
from ..errors import ConfigurationError, SignalError
from ..ffts.opcount import OpCounts
from ..hrv.metrics import WindowMetrics, window_metrics_batch
from ..perf.profiler import span as _profile_span
from .fast import FastLomb, LombSpectrum

__all__ = [
    "MIN_BEATS_PER_WINDOW",
    "WelchLomb",
    "WelchLombResult",
    "RecordingWindows",
    "analyze_spans",
    "analyze_spans_quality",
    "assemble_result",
    "iter_windows",
    "uniform_window_matrix",
]

#: Sentinel distinguishing "kwarg not passed" from any real value, so the
#: legacy ``batched=`` spelling can warn exactly when it is used.
_UNSET = object()

#: Fewest beats a window may contain and still be analysed.
MIN_BEATS_PER_WINDOW = 16


def assemble_result(
    spectra,
    window_times: np.ndarray,
    skipped: int,
    count_ops: bool = False,
    out: np.ndarray | None = None,
    metrics=None,
) -> WelchLombResult:
    """Assemble per-window spectra into a :class:`WelchLombResult`.

    Shared back half of :meth:`WelchLomb.analyze`; the fleet engine
    feeds it the concatenated spectra of all shards of one recording,
    which makes the sharded result identical to the single-process one
    by construction.

    All windows are interpolated onto the frequency grid of the
    longest-duration window so the spectrogram is rectangular even when
    beat counts differ per window; windows already on a grid of the
    reference length are stacked with one array assignment.

    *out*, when given, provides the ``(n_windows, grid_size)`` float64
    spectrogram storage and becomes the result's ``spectrogram`` — the
    caller then owns its lifetime (it must NOT be a workspace-arena
    temporary, since the result keeps referencing it).  Values written
    are identical with or without *out*.

    *metrics*, when given, is the per-window :class:`WindowMetrics`
    sequence aligned with *spectra* (one entry per kept window, in the
    same order) and lands on the result's ``window_metrics``.
    """
    spectra = list(spectra)
    metrics = tuple(metrics) if metrics is not None else ()
    if metrics and len(metrics) != len(spectra):
        raise SignalError(
            f"{len(metrics)} window metrics for {len(spectra)} spectra"
        )
    if not spectra:
        raise SignalError(
            "no analysable windows: recording too short or too sparse"
        )
    with _profile_span("assemble"):
        reference = max(spectra, key=lambda s: s.frequencies.size)
        grid = reference.frequencies
        sizes = np.fromiter(
            (s.frequencies.size for s in spectra),
            dtype=np.intp,
            count=len(spectra),
        )
        if out is None:
            rows = np.empty((len(spectra), grid.size))
        else:
            if out.shape != (len(spectra), grid.size) or (
                out.dtype != np.float64
            ):
                raise SignalError(
                    f"out must be float64 with shape "
                    f"({len(spectra)}, {grid.size}), got {out.dtype} "
                    f"{out.shape}"
                )
            rows = out
        full = np.flatnonzero(sizes == grid.size)
        if full.size:
            rows[full] = [spectra[i].power for i in full]
        for i in np.flatnonzero(sizes != grid.size):
            rows[i] = np.interp(
                grid,
                spectra[i].frequencies,
                spectra[i].power,
                left=0.0,
                right=0.0,
            )
        counts = None
        if count_ops:
            counts = sum((s.counts for s in spectra), OpCounts())
        return WelchLombResult(
            frequencies=grid,
            spectrogram=rows,
            averaged=rows.mean(axis=0),
            window_times=np.asarray(window_times),
            window_spectra=tuple(spectra),
            counts=counts,
            skipped_windows=skipped,
            window_metrics=metrics,
        )


def iter_windows(
    times: np.ndarray,
    window_seconds: float,
    overlap: float,
) -> list[tuple[int, int]]:
    """Index ranges ``[start, stop)`` of the sliding analysis windows.

    Windows are laid out on the time axis every
    ``window_seconds * (1 - overlap)`` seconds starting at ``times[0]``;
    a trailing partial window is emitted only if it spans at least half
    the nominal duration.
    """
    t = as_1d_float_array(times, "times", min_length=2)
    if window_seconds <= 0:
        raise ConfigurationError(
            f"window_seconds must be positive, got {window_seconds}"
        )
    if not 0.0 <= overlap < 1.0:
        raise ConfigurationError(f"overlap must be in [0, 1), got {overlap}")
    step = window_seconds * (1.0 - overlap)
    start_times: list[float] = []
    start_time = float(t[0])
    end_time = float(t[-1])
    while start_time < end_time:
        start_times.append(start_time)
        if start_time + window_seconds >= end_time:
            break
        start_time += step
    if not start_times:
        return []
    # One vectorised bisection for all window edges instead of two
    # searchsorted calls per window.
    start_arr = np.asarray(start_times)
    starts = np.searchsorted(t, start_arr, side="left")
    stops = np.searchsorted(t, start_arr + window_seconds, side="left")
    actual_span = np.zeros(starts.size)
    nonempty = stops > starts
    actual_span[nonempty] = t[stops[nonempty] - 1] - t[starts[nonempty]]
    keep = (stops - starts >= 2) & (actual_span >= 0.5 * window_seconds)
    return list(zip(starts[keep].tolist(), stops[keep].tolist()))


def uniform_window_matrix(
    times: np.ndarray, values: np.ndarray, spans
) -> tuple[np.ndarray, np.ndarray] | None:
    """Zero-copy ``(n_windows, L)`` window matrices for uniform layouts.

    When every span has the same length *and* consecutive spans start a
    constant number of samples apart — the geometry of uniformly-sampled
    (resampled) recordings — all windows are strided views into the
    recording arrays, expressible as one ``sliding_window_view`` slice
    with **no copying at all**.  Returns ``(t_mat, x_mat)`` strided
    views in span order, or ``None`` when the layout is not uniform
    (irregular RR tachograms almost never are; resampled or
    evenly-gridded signals almost always are).

    Both the Welch driver and the fleet shard executor route through
    this single helper, so a uniform recording takes the same dense
    path whether it is analysed whole or in shards — which keeps
    sharded results bit-identical to single-process ones.
    """
    spans = list(spans)
    if not spans:
        return None
    starts = np.fromiter((s for s, _ in spans), dtype=np.int64, count=len(spans))
    stops = np.fromiter((s for _, s in spans), dtype=np.int64, count=len(spans))
    lengths = stops - starts
    length = int(lengths[0])
    if not np.all(lengths == length):
        return None
    if len(spans) > 1:
        steps = np.diff(starts)
        step = int(steps[0])
        if step <= 0 or not np.all(steps == step):
            return None
    else:
        step = 1
    sel = slice(int(starts[0]), int(starts[-1]) + 1, step)
    return (
        sliding_window_view(times, length)[sel],
        sliding_window_view(values, length)[sel],
    )


def analyze_spans(
    analyzer: FastLomb,
    times: np.ndarray,
    values: np.ndarray,
    spans,
    count_ops: bool = False,
) -> list[LombSpectrum]:
    """Batch-analyse the given window spans of one validated recording.

    The single choke point of the batched execution engine: the Welch
    driver (whole recording), the fleet worker (one shard) and the
    in-process fleet path all call it, so every execution mode takes
    the identical pipeline.  Uniform span layouts go through the
    zero-copy :func:`uniform_window_matrix` fast path; everything else
    slices per-window views and drives
    :meth:`~repro.lomb.fast.FastLomb.periodogram_batch`.
    """
    matrix = (
        uniform_window_matrix(times, values, spans)
        if hasattr(analyzer, "periodogram_batch_matrix")
        else None
    )
    if matrix is not None:
        return analyzer.periodogram_batch_matrix(
            matrix[0], matrix[1], count_ops=count_ops
        )
    windows = [(times[start:stop], values[start:stop]) for start, stop in spans]
    return analyzer.periodogram_batch(
        windows, count_ops=count_ops, validate=False
    )


def analyze_spans_quality(
    analyzer: FastLomb,
    times: np.ndarray,
    values: np.ndarray,
    spans,
    count_ops: bool = False,
    corrected: np.ndarray | None = None,
) -> tuple[list[LombSpectrum], tuple[WindowMetrics, ...]]:
    """:func:`analyze_spans` plus per-window time-domain metrics.

    The quality-aware choke point: every execution mode that carries
    :class:`WindowMetrics` (streaming sessions, hub batches, fleet
    workers, the gateway) computes them here, from the *same* spans the
    Lomb kernel analyses, so spectra and metrics can never disagree
    about which beats a window held.  ``corrected`` is the optional
    0/1 interpolated-beat mask aligned with ``values``.
    """
    spectra = analyze_spans(analyzer, times, values, spans, count_ops)
    metrics = window_metrics_batch(values, spans, corrected=corrected)
    return spectra, metrics


@dataclass(frozen=True)
class RecordingWindows:
    """Validated window layout of one recording — the shardable plan.

    Produced by :meth:`WelchLomb.plan_windows`; the fleet engine shards
    ``spans`` into contiguous ranges, analyses each range with
    :meth:`FastLomb.periodogram_batch` (possibly in another process) and
    reassembles the spectra with :func:`assemble_result`.

    Attributes
    ----------
    times, values:
        The validated recording arrays.
    spans:
        Kept ``[start, stop)`` sample-index ranges, one per analysable
        window, in time order.
    centers:
        Centre time (seconds) of every kept window.
    skipped:
        Windows rejected for holding fewer than
        :data:`MIN_BEATS_PER_WINDOW` beats.
    corrected:
        Optional float64 0/1 mask of interpolated beats, aligned with
        ``values`` (float so it rides the same shared-memory and socket
        array paths the recording arrays do).
    """

    times: np.ndarray
    values: np.ndarray
    spans: tuple[tuple[int, int], ...]
    centers: np.ndarray
    skipped: int
    corrected: np.ndarray | None = None

    @property
    def n_windows(self) -> int:
        return len(self.spans)

    def window_arrays(
        self, lo: int = 0, hi: int | None = None
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """``(times, values)`` slices of kept windows ``lo .. hi``."""
        spans = self.spans[lo:hi]
        return [
            (self.times[start:stop], self.values[start:stop])
            for start, stop in spans
        ]

    def window_matrix(
        self, lo: int = 0, hi: int | None = None
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Zero-copy window matrices of kept windows ``lo .. hi``.

        ``None`` unless the span layout is uniform; see
        :func:`uniform_window_matrix`.
        """
        return uniform_window_matrix(
            self.times, self.values, self.spans[lo:hi]
        )


@dataclass(frozen=True)
class WelchLombResult:
    """Output of a Welch-Lomb run.

    Attributes
    ----------
    frequencies:
        Common frequency grid (Hz) shared by all windows.
    spectrogram:
        ``(n_windows, n_frequencies)`` per-window periodograms — the
        time-frequency distribution.
    averaged:
        Welch average across windows.
    window_times:
        Centre time (seconds) of every analysed window.
    window_spectra:
        The individual :class:`LombSpectrum` records.
    counts:
        Total executed operation counts (``None`` unless requested).
    skipped_windows:
        Number of windows rejected for having too few beats.
    window_metrics:
        Per-window :class:`~repro.hrv.metrics.WindowMetrics` (empty
        when the run did not compute them).
    """

    frequencies: np.ndarray
    spectrogram: np.ndarray
    averaged: np.ndarray
    window_times: np.ndarray
    window_spectra: tuple[LombSpectrum, ...]
    counts: OpCounts | None = None
    skipped_windows: int = 0
    window_metrics: tuple[WindowMetrics, ...] = ()

    @property
    def n_windows(self) -> int:
        return int(self.spectrogram.shape[0])

    def averaged_spectrum(self) -> LombSpectrum:
        """The Welch average packaged as a :class:`LombSpectrum`."""
        total_samples = sum(s.n_samples for s in self.window_spectra)
        # Actual recording span the analysed windows cover: window centres
        # are exact midpoints, so centre +/- duration/2 recovers the first
        # window's start and the last window's stop.  Summing per-window
        # durations would double-count overlapped stretches (50 % overlap
        # would report nearly twice the recording length).
        start = self.window_times[0] - 0.5 * self.window_spectra[0].duration
        stop = self.window_times[-1] + 0.5 * self.window_spectra[-1].duration
        return LombSpectrum(
            frequencies=self.frequencies,
            power=self.averaged,
            mean=float(np.mean([s.mean for s in self.window_spectra])),
            variance=float(np.mean([s.variance for s in self.window_spectra])),
            n_samples=total_samples,
            duration=float(stop - start),
            counts=self.counts,
        )


class WelchLomb:
    """Sliding-window Welch-Lomb analyser.

    Parameters
    ----------
    analyzer:
        The per-window :class:`FastLomb` engine (its backend decides
        whether this is the conventional or the proposed system).
    window_seconds:
        Nominal window duration; the paper uses 120 s.
    overlap:
        Fractional window overlap; the paper uses 0.5.
    """

    def __init__(
        self,
        analyzer: FastLomb | None = None,
        window_seconds: float = 120.0,
        overlap: float = 0.5,
    ):
        if analyzer is None:
            analyzer = FastLomb(scaling="denormalized")
        self.analyzer = analyzer
        if window_seconds <= 0:
            raise ConfigurationError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        if not 0.0 <= overlap < 1.0:
            raise ConfigurationError(f"overlap must be in [0, 1), got {overlap}")
        self.window_seconds = float(window_seconds)
        self.overlap = float(overlap)

    def plan_windows(self, times, values, corrected=None) -> RecordingWindows:
        """Validate a recording and lay out its analysable windows.

        This is the shared front half of :meth:`analyze`; the fleet
        engine calls it directly to shard the resulting spans across
        worker processes.  ``corrected``, when given, is the
        interpolated-beat mask aligned with ``values`` (any real or
        boolean dtype; stored as float64 0/1 so it travels the same
        array transports the recording does).
        """
        t = as_1d_float_array(times, "times", min_length=MIN_BEATS_PER_WINDOW)
        x = as_1d_float_array(values, "values", min_length=MIN_BEATS_PER_WINDOW)
        if t.size != x.size:
            raise SignalError(
                f"times and values must match, got {t.size} and {x.size}"
            )
        if np.any(np.diff(t) <= 0):
            raise SignalError("times must be strictly increasing")
        mask = None
        if corrected is not None:
            mask = np.ascontiguousarray(corrected, dtype=np.float64)
            if mask.shape != x.shape:
                raise SignalError(
                    f"corrected mask length {mask.size} does not match "
                    f"values {x.size}"
                )
        spans = iter_windows(t, self.window_seconds, self.overlap)
        kept: list[tuple[int, int]] = []
        skipped = 0
        for start, stop in spans:
            if stop - start < MIN_BEATS_PER_WINDOW:
                skipped += 1
            else:
                kept.append((start, stop))
        if kept:
            starts = np.array([span[0] for span in kept])
            stops = np.array([span[1] for span in kept])
            centers = 0.5 * (t[starts] + t[stops - 1])
        else:
            centers = np.empty(0)
        return RecordingWindows(
            times=t,
            values=x,
            spans=tuple(kept),
            centers=centers,
            skipped=skipped,
            corrected=mask,
        )

    def analyze(
        self,
        times,
        values,
        count_ops: bool = False,
        batched=_UNSET,
    ) -> WelchLombResult:
        """Run the sliding-window analysis over a full recording.

        Thin wrapper over :meth:`analyze_windows` kept as the historical
        spelling.  Passing ``batched=`` here is deprecated — execution
        choices live on the engine facade (:mod:`repro.engine`) now;
        the sequential oracle remains reachable through
        :meth:`analyze_windows`.
        """
        if batched is _UNSET:
            return self.analyze_windows(times, values, count_ops=count_ops)
        warnings.warn(
            "WelchLomb.analyze(batched=...) is deprecated; use the "
            "repro.engine facade to choose execution settings, or "
            "WelchLomb.analyze_windows(batched=...) for the equivalence "
            "oracle",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.analyze_windows(
            times, values, count_ops=count_ops, batched=bool(batched)
        )

    def analyze_windows(
        self,
        times,
        values,
        count_ops: bool = False,
        batched: bool = True,
        corrected=None,
    ) -> WelchLombResult:
        """Run the sliding-window analysis over a full recording.

        All windows are interpolated onto the frequency grid of the
        longest-duration window so the spectrogram is rectangular even
        when beat counts differ per window.

        ``batched`` (default) drives all windows through
        :meth:`FastLomb.periodogram_batch`; ``batched=False`` runs the
        original per-window loop.  Both paths produce the same spectra
        and operation counts.  Per-window time-domain metrics are
        always computed over the kept spans; ``corrected`` threads the
        interpolated-beat mask into their quality flags.
        """
        plan = self.plan_windows(times, values, corrected=corrected)
        use_batch = batched and hasattr(self.analyzer, "periodogram_batch")
        if use_batch:
            # The recording was validated above; the per-window checks in
            # the sequential entry point would only repeat it.  Uniform
            # layouts take the zero-copy matrix path inside.
            spectra: list[LombSpectrum] = analyze_spans(
                self.analyzer, plan.times, plan.values, plan.spans, count_ops
            )
        else:
            spectra = [
                self.analyzer.periodogram(tw, xw, count_ops=count_ops)
                for tw, xw in plan.window_arrays()
            ]
        metrics = window_metrics_batch(
            plan.values, plan.spans, corrected=plan.corrected
        )
        return assemble_result(
            spectra, plan.centers, plan.skipped, count_ops, metrics=metrics
        )
