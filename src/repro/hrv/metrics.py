"""HRV metrics: the paper's LFP/HFP ratio plus standard time-domain set.

The LFP/HFP ratio is the clinical read-out the whole evaluation hinges
on: "a ratio of LFP over HFP much less than 1 indicates a sinus
arrhythmia condition and is an appropriate quality metric for such an
application" (Section VI).  Time-domain metrics (SDNN, RMSSD, pNN50) are
provided for completeness of the HRV substrate.
"""

from __future__ import annotations

import numpy as np

from ..errors import SignalError
from .bands import HF_BAND, LF_BAND, band_power
from .rr import RRSeries

__all__ = [
    "lf_hf_ratio",
    "ratio_error",
    "sdnn",
    "rmssd",
    "pnn50",
    "sdsd",
    "time_domain_summary",
]


def lf_hf_ratio(spectrum, frequencies=None) -> float:
    """LFP / HFP band-power ratio of a periodogram (paper Table I)."""
    lfp = band_power(spectrum, LF_BAND, frequencies=frequencies)
    hfp = band_power(spectrum, HF_BAND, frequencies=frequencies)
    if hfp <= 0:
        raise SignalError("HF band power is zero; LF/HF ratio undefined")
    return lfp / hfp


def ratio_error(approximate: float, reference: float) -> float:
    """Relative error of an approximated LF/HF ratio (paper's 4.9 % figure)."""
    if reference == 0:
        raise SignalError("reference ratio is zero")
    return abs(approximate - reference) / abs(reference)


def _intervals_ms(series: RRSeries) -> np.ndarray:
    return series.intervals * 1000.0


def sdnn(series: RRSeries) -> float:
    """Standard deviation of RR intervals, in milliseconds."""
    return float(np.std(_intervals_ms(series), ddof=1))


def rmssd(series: RRSeries) -> float:
    """Root mean square of successive RR differences, in milliseconds."""
    diffs = np.diff(_intervals_ms(series))
    if diffs.size == 0:
        raise SignalError("need at least 2 intervals for RMSSD")
    return float(np.sqrt(np.mean(diffs**2)))


def sdsd(series: RRSeries) -> float:
    """Standard deviation of successive RR differences, in milliseconds."""
    diffs = np.diff(_intervals_ms(series))
    if diffs.size < 2:
        raise SignalError("need at least 3 intervals for SDSD")
    return float(np.std(diffs, ddof=1))


def pnn50(series: RRSeries) -> float:
    """Fraction of successive RR differences exceeding 50 ms."""
    diffs = np.abs(np.diff(_intervals_ms(series)))
    if diffs.size == 0:
        raise SignalError("need at least 2 intervals for pNN50")
    return float(np.count_nonzero(diffs > 50.0)) / diffs.size


def time_domain_summary(series: RRSeries) -> dict[str, float]:
    """All time-domain metrics in one dictionary."""
    return {
        "mean_rr_ms": float(np.mean(_intervals_ms(series))),
        "mean_hr_bpm": series.mean_heart_rate,
        "sdnn_ms": sdnn(series),
        "rmssd_ms": rmssd(series),
        "sdsd_ms": sdsd(series),
        "pnn50": pnn50(series),
    }
