"""HRV metrics: the paper's LFP/HFP ratio plus standard time-domain set.

The LFP/HFP ratio is the clinical read-out the whole evaluation hinges
on: "a ratio of LFP over HFP much less than 1 indicates a sinus
arrhythmia condition and is an appropriate quality metric for such an
application" (Section VI).  Time-domain metrics (SDNN, RMSSD, pNN50,
pNN20) are the HRnV-Calc standard set, provided both as whole-recording
functions over an :class:`RRSeries` and as the per-window
:class:`WindowMetrics` record that rides next to each Welch window's
spectrum through every execution layer.

:func:`window_metrics_batch` is deliberately *composition-independent*:
each window is reduced over its own contiguous float64 slice (mean,
``std(ddof=1)``, ``diff``), never through prefix sums shared across
windows, so the same span produces bit-identical metrics whether it is
analysed alone, inside a session batch, or concatenated into a hub's
heterogeneous mega-batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SignalError
from .bands import HF_BAND, LF_BAND, band_power
from .rr import RRSeries

__all__ = [
    "ARTIFACT_RUN_LENGTH",
    "FEW_BEATS_THRESHOLD",
    "FLAG_ARTIFACT_RUN",
    "FLAG_FEW_BEATS",
    "FLAG_HIGH_CORRECTED",
    "HIGH_CORRECTED_FRACTION",
    "WindowMetrics",
    "lf_hf_ratio",
    "pnn20",
    "ratio_error",
    "sdnn",
    "rmssd",
    "pnn50",
    "sdsd",
    "time_domain_summary",
    "window_metrics_batch",
]


def lf_hf_ratio(spectrum, frequencies=None) -> float:
    """LFP / HFP band-power ratio of a periodogram (paper Table I)."""
    lfp = band_power(spectrum, LF_BAND, frequencies=frequencies)
    hfp = band_power(spectrum, HF_BAND, frequencies=frequencies)
    if hfp <= 0:
        raise SignalError("HF band power is zero; LF/HF ratio undefined")
    return lfp / hfp


def ratio_error(approximate: float, reference: float) -> float:
    """Relative error of an approximated LF/HF ratio (paper's 4.9 % figure)."""
    if reference == 0:
        raise SignalError("reference ratio is zero")
    return abs(approximate - reference) / abs(reference)


def _intervals_ms(series: RRSeries) -> np.ndarray:
    return series.intervals * 1000.0


def sdnn(series: RRSeries) -> float:
    """Standard deviation of RR intervals, in milliseconds."""
    return float(np.std(_intervals_ms(series), ddof=1))


def rmssd(series: RRSeries) -> float:
    """Root mean square of successive RR differences, in milliseconds."""
    diffs = np.diff(_intervals_ms(series))
    if diffs.size == 0:
        raise SignalError("need at least 2 intervals for RMSSD")
    return float(np.sqrt(np.mean(diffs**2)))


def sdsd(series: RRSeries) -> float:
    """Standard deviation of successive RR differences, in milliseconds."""
    diffs = np.diff(_intervals_ms(series))
    if diffs.size < 2:
        raise SignalError("need at least 3 intervals for SDSD")
    return float(np.std(diffs, ddof=1))


def pnn50(series: RRSeries) -> float:
    """Fraction of successive RR differences exceeding 50 ms."""
    diffs = np.abs(np.diff(_intervals_ms(series)))
    if diffs.size == 0:
        raise SignalError("need at least 2 intervals for pNN50")
    return float(np.count_nonzero(diffs > 50.0)) / diffs.size


def pnn20(series: RRSeries) -> float:
    """Fraction of successive RR differences exceeding 20 ms."""
    diffs = np.abs(np.diff(_intervals_ms(series)))
    if diffs.size == 0:
        raise SignalError("need at least 2 intervals for pNN20")
    return float(np.count_nonzero(diffs > 20.0)) / diffs.size


def time_domain_summary(series: RRSeries) -> dict[str, float]:
    """All time-domain metrics in one dictionary."""
    return {
        "mean_rr_ms": float(np.mean(_intervals_ms(series))),
        "mean_hr_bpm": series.mean_heart_rate,
        "sdnn_ms": sdnn(series),
        "rmssd_ms": rmssd(series),
        "sdsd_ms": sdsd(series),
        "pnn50": pnn50(series),
        "pnn20": pnn20(series),
    }


# ----------------------------------------------------------------------
# Per-window metrics and quality flags
# ----------------------------------------------------------------------

#: Quality-flag bits carried in :attr:`WindowMetrics.flags`.
FLAG_FEW_BEATS = 1  #: the window holds suspiciously few beats
FLAG_HIGH_CORRECTED = 2  #: too large a fraction of beats was interpolated
FLAG_ARTIFACT_RUN = 4  #: a run of consecutive corrected beats

#: Beat count below which a window is flagged ``FLAG_FEW_BEATS`` — well
#: under what any plausible heart rate puts in the default two-minute
#: Welch window, so tripping it means real signal loss, not bradycardia.
FEW_BEATS_THRESHOLD = 64

#: Corrected-beat fraction above which ``FLAG_HIGH_CORRECTED`` trips
#: (the usual "discard windows with >5 % interpolated beats" rule).
HIGH_CORRECTED_FRACTION = 0.05

#: Consecutive corrected beats that count as an artifact *run* — a
#: burst of interpolation (sensor dropout, motion) rather than isolated
#: ectopy, which distorts spectra more than the same fraction spread out.
ARTIFACT_RUN_LENGTH = 3

_FLAG_NAMES = (
    (FLAG_FEW_BEATS, "few_beats"),
    (FLAG_HIGH_CORRECTED, "high_corrected"),
    (FLAG_ARTIFACT_RUN, "artifact_run"),
)


@dataclass(frozen=True)
class WindowMetrics:
    """Time-domain metrics and quality flags for one Welch window.

    Computed at the ``analyze_spans`` choke point from the exact beat
    span the window's spectrum was computed from, and carried next to
    that spectrum on :class:`~repro.engine.WindowEmission` and
    :class:`~repro.core.system.PSAResult` through every transport.
    """

    n_beats: int
    mean_rr_ms: float
    sdnn_ms: float
    rmssd_ms: float
    pnn50: float
    pnn20: float
    corrected_fraction: float
    flags: int

    @property
    def flag_names(self) -> tuple[str, ...]:
        """Human-readable names of the quality flags that tripped."""
        return tuple(
            name for bit, name in _FLAG_NAMES if self.flags & bit
        )

    def to_dict(self) -> dict:
        """Plain-data form (service wire / JSON round trip)."""
        return {
            "n_beats": self.n_beats,
            "mean_rr_ms": self.mean_rr_ms,
            "sdnn_ms": self.sdnn_ms,
            "rmssd_ms": self.rmssd_ms,
            "pnn50": self.pnn50,
            "pnn20": self.pnn20,
            "corrected_fraction": self.corrected_fraction,
            "flags": self.flags,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WindowMetrics":
        """Rebuild from :meth:`to_dict` output (exact float round trip)."""
        return cls(
            n_beats=int(payload["n_beats"]),
            mean_rr_ms=float(payload["mean_rr_ms"]),
            sdnn_ms=float(payload["sdnn_ms"]),
            rmssd_ms=float(payload["rmssd_ms"]),
            pnn50=float(payload["pnn50"]),
            pnn20=float(payload["pnn20"]),
            corrected_fraction=float(payload["corrected_fraction"]),
            flags=int(payload["flags"]),
        )


def _longest_run(mask: np.ndarray) -> int:
    """Length of the longest run of nonzero entries in ``mask``."""
    nonzero = mask != 0.0
    if not nonzero.any():
        return 0
    padded = np.concatenate(([False], nonzero, [False]))
    edges = np.flatnonzero(np.diff(padded.astype(np.int8)))
    return int(np.max(edges[1::2] - edges[0::2]))


def window_metrics_batch(values, spans, corrected=None):
    """Per-window time-domain metrics over Welch window spans.

    ``values`` are RR intervals in seconds; ``spans`` the same
    ``(lo, hi)`` index pairs the Lomb kernel analyses; ``corrected`` an
    optional 0/1 mask (any real dtype) marking interpolated beats.
    Returns one :class:`WindowMetrics` per span.

    Every reduction runs over the window's own contiguous slice, so the
    result for a span never depends on which other spans share the
    batch — the property the bit-identity guarantee across execution
    paths rests on.
    """
    rr = np.ascontiguousarray(values, dtype=np.float64)
    mask = None
    if corrected is not None:
        mask = np.ascontiguousarray(corrected, dtype=np.float64)
        if mask.shape != rr.shape:
            raise SignalError(
                f"corrected mask length {mask.shape} does not match "
                f"intervals {rr.shape}"
            )
    out = []
    for lo, hi in spans:
        rr_ms = rr[lo:hi] * 1000.0
        n = int(rr_ms.size)
        mean_rr = float(np.mean(rr_ms)) if n else 0.0
        sdnn_ms = float(np.std(rr_ms, ddof=1)) if n >= 2 else 0.0
        diffs = np.diff(rr_ms)
        if diffs.size:
            rmssd_ms = float(np.sqrt(np.mean(diffs * diffs)))
            abs_diffs = np.abs(diffs)
            p50 = float(np.count_nonzero(abs_diffs > 50.0)) / diffs.size
            p20 = float(np.count_nonzero(abs_diffs > 20.0)) / diffs.size
        else:
            rmssd_ms, p50, p20 = 0.0, 0.0, 0.0
        if mask is not None and n:
            window_mask = mask[lo:hi]
            fraction = float(np.mean(window_mask))
            run = _longest_run(window_mask)
        else:
            fraction, run = 0.0, 0
        flags = 0
        if n < FEW_BEATS_THRESHOLD:
            flags |= FLAG_FEW_BEATS
        if fraction > HIGH_CORRECTED_FRACTION:
            flags |= FLAG_HIGH_CORRECTED
        if run >= ARTIFACT_RUN_LENGTH:
            flags |= FLAG_ARTIFACT_RUN
        out.append(
            WindowMetrics(
                n_beats=n,
                mean_rr_ms=mean_rr,
                sdnn_ms=sdnn_ms,
                rmssd_ms=rmssd_ms,
                pnn50=p50,
                pnn20=p20,
                corrected_fraction=fraction,
                flags=flags,
            )
        )
    return tuple(out)
