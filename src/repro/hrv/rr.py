"""RR-interval series container.

The input to the PSA system is "a fixed size window of time intervals
between successive heart beats (RR intervals)" (paper Section II).  The
:class:`RRSeries` couples beat instants with the interval values, keeps
them consistent, and offers the slicing/cleaning operations the pipeline
needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array
from ..errors import SignalError, ValidationError

__all__ = ["RRSeries"]

#: Physiological plausibility range for an RR interval in seconds
#: (~30 to ~200 beats per minute).
_MIN_RR, _MAX_RR = 0.3, 2.0


def _as_corrected_mask(corrected, n: int) -> np.ndarray | None:
    """Normalise an optional corrected-beat mask to a bool array."""
    if corrected is None:
        return None
    mask = np.asarray(corrected)
    if mask.ndim != 1 or mask.size != n:
        raise SignalError(
            f"corrected mask must be 1-D of length {n}, got shape "
            f"{mask.shape}"
        )
    return mask.astype(bool)


@dataclass(frozen=True)
class RRSeries:
    """A sequence of heart-beat intervals on a time axis.

    Attributes
    ----------
    times:
        Beat instants in seconds, strictly increasing.  ``times[k]`` is
        the time of the beat *ending* interval ``intervals[k]``.
    intervals:
        RR intervals in seconds, all positive.
    corrected:
        Optional boolean mask marking intervals that were interpolated
        by artifact preprocessing (:mod:`repro.hrv.preprocessing` or
        the streaming ingestion layer).  ``None`` means provenance is
        unknown — metrics then report a zero corrected fraction.
    """

    times: np.ndarray
    intervals: np.ndarray
    corrected: np.ndarray | None = None

    def __post_init__(self):
        t = as_1d_float_array(self.times, "times", min_length=2)
        rr = as_1d_float_array(self.intervals, "intervals", min_length=2)
        if t.size != rr.size:
            raise SignalError(
                f"times and intervals must match, got {t.size} and {rr.size}"
            )
        if np.any(np.diff(t) <= 0):
            raise SignalError("beat times must be strictly increasing")
        if np.any(rr <= 0):
            raise SignalError("RR intervals must be positive")
        object.__setattr__(self, "times", t)
        object.__setattr__(self, "intervals", rr)
        object.__setattr__(
            self, "corrected", _as_corrected_mask(self.corrected, rr.size)
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_intervals(cls, intervals, start_time: float = 0.0) -> "RRSeries":
        """Build a series from interval values alone; times are cumulative."""
        rr = as_1d_float_array(intervals, "intervals", min_length=2)
        times = float(start_time) + np.cumsum(rr)
        return cls(times=times, intervals=rr)

    @classmethod
    def from_beat_times(cls, beat_times) -> "RRSeries":
        """Build a series from detected beat instants (e.g. QRS output).

        Beat times must be strictly increasing; unsorted or duplicate
        instants raise :class:`~repro.errors.ValidationError` rather
        than silently yielding zero or negative RR intervals.
        """
        t = as_1d_float_array(beat_times, "beat_times", min_length=3)
        steps = np.diff(t)
        if np.any(steps < 0):
            raise ValidationError(
                "beat times are not sorted: they must be strictly "
                "increasing instants"
            )
        if np.any(steps == 0):
            raise ValidationError(
                "beat times contain duplicates: each beat must have a "
                "unique instant"
            )
        return cls(times=t[1:], intervals=steps)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def n_beats(self) -> int:
        """Number of intervals in the series."""
        return int(self.intervals.size)

    @property
    def duration(self) -> float:
        """Time span covered by the series, in seconds."""
        return float(self.times[-1] - self.times[0])

    @property
    def mean_heart_rate(self) -> float:
        """Average heart rate in beats per minute."""
        return 60.0 / float(self.intervals.mean())

    def plausibility_fraction(self) -> float:
        """Fraction of intervals inside the physiological range.

        Useful as a quick data-quality indicator before analysis; the
        preprocessing module uses finer, local rules.
        """
        ok = (self.intervals >= _MIN_RR) & (self.intervals <= _MAX_RR)
        return float(np.count_nonzero(ok)) / self.n_beats

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def with_corrected(self, corrected) -> "RRSeries":
        """Copy of the series carrying a corrected-beat mask."""
        return RRSeries(
            times=self.times, intervals=self.intervals, corrected=corrected
        )

    def slice_time(self, start: float, stop: float) -> "RRSeries":
        """Sub-series with beat times in ``[start, stop)``."""
        if stop <= start:
            raise SignalError(f"empty time slice [{start}, {stop})")
        mask = (self.times >= start) & (self.times < stop)
        if np.count_nonzero(mask) < 2:
            raise SignalError(
                f"time slice [{start}, {stop}) holds fewer than 2 beats"
            )
        return RRSeries(
            times=self.times[mask],
            intervals=self.intervals[mask],
            corrected=(
                None if self.corrected is None else self.corrected[mask]
            ),
        )

    def head(self, n: int) -> "RRSeries":
        """First *n* intervals."""
        if n < 2:
            raise SignalError(f"head needs n >= 2, got {n}")
        return RRSeries(
            times=self.times[:n],
            intervals=self.intervals[:n],
            corrected=(
                None if self.corrected is None else self.corrected[:n]
            ),
        )
