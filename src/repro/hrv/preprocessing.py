"""RR-series cleaning: artifact and ectopic-beat handling.

Real delineation output contains missed/false detections and ectopic
beats whose RR excursions would leak broadband power into the LF/HF
bands.  The standard remedy — used before any spectral HRV analysis —
is local-median filtering of implausible intervals.  The synthetic
cohort can inject ectopics so this path is exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_in_range, require_positive
from ..errors import SignalError
from .rr import RRSeries

__all__ = ["ArtifactReport", "filter_artifacts", "detect_ectopic_mask"]


@dataclass(frozen=True)
class ArtifactReport:
    """Result of artifact filtering.

    Attributes
    ----------
    series:
        The cleaned series.
    corrected_indices:
        Indices (into the *original* interval array) that were replaced.
    fraction_corrected:
        ``len(corrected_indices) / n_beats`` of the original series.
    """

    series: RRSeries
    corrected_indices: np.ndarray
    fraction_corrected: float


def detect_ectopic_mask(
    intervals: np.ndarray, window: int = 11, tolerance: float = 0.2
) -> np.ndarray:
    """Boolean mask of intervals deviating > *tolerance* from local median.

    A centred running median of *window* beats estimates the local normal
    interval; beats outside ``(1 +/- tolerance)`` of it are flagged —
    the classic ectopic/artifact rule for tachograms.
    """
    rr = np.asarray(intervals, dtype=np.float64)
    if window < 3 or window % 2 == 0:
        raise SignalError(f"window must be an odd integer >= 3, got {window}")
    require_in_range(tolerance, 0.01, 1.0, "tolerance")
    if rr.size < window:
        raise SignalError(
            f"series of {rr.size} beats shorter than window {window}"
        )
    half = window // 2
    padded = np.concatenate([rr[half:0:-1], rr, rr[-2 : -half - 2 : -1]])
    medians = np.empty_like(rr)
    for i in range(rr.size):
        medians[i] = np.median(padded[i : i + window])
    deviation = np.abs(rr - medians) / medians
    return deviation > tolerance


def filter_artifacts(
    series: RRSeries,
    window: int = 11,
    tolerance: float = 0.2,
    max_fraction: float = 0.3,
) -> ArtifactReport:
    """Replace ectopic/artifact intervals with the local median value.

    Replacement (rather than deletion) keeps the beat count and the time
    axis intact, which the fixed-window Welch-Lomb pipeline prefers.
    Raises :class:`SignalError` when more than *max_fraction* of the
    beats are flagged — at that point the recording is unusable rather
    than merely noisy.
    """
    require_positive(max_fraction, "max_fraction")
    flagged = detect_ectopic_mask(series.intervals, window, tolerance)
    fraction = float(np.count_nonzero(flagged)) / series.n_beats
    if fraction > max_fraction:
        raise SignalError(
            f"{fraction:.0%} of beats flagged as artifacts "
            f"(limit {max_fraction:.0%}); recording rejected"
        )
    if not np.any(flagged):
        return ArtifactReport(
            series=series,
            corrected_indices=np.array([], dtype=np.int64),
            fraction_corrected=0.0,
        )
    cleaned = series.intervals.copy()
    half = window // 2
    padded = np.concatenate(
        [cleaned[half:0:-1], cleaned, cleaned[-2 : -half - 2 : -1]]
    )
    for i in np.flatnonzero(flagged):
        cleaned[i] = np.median(padded[i : i + window])
    return ArtifactReport(
        series=RRSeries(times=series.times, intervals=cleaned),
        corrected_indices=np.flatnonzero(flagged),
        fraction_corrected=fraction,
    )
