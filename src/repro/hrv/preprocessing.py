"""RR-series cleaning: artifact and ectopic-beat handling.

Real delineation output contains missed/false detections and ectopic
beats whose RR excursions would leak broadband power into the LF/HF
bands.  The standard remedy — used before any spectral HRV analysis —
is local-median filtering of implausible intervals.  The synthetic
cohort can inject ectopics so this path is exercised end to end.

Two shapes of the same rule live here:

* :func:`filter_artifacts` — whole-record batch cleaning;
* :class:`StreamingPreprocessor` — the incremental form the ingestion
  layer (:mod:`repro.ingest`) runs between a beat source and
  ``StreamingSession.feed``.  It resolves each interval the moment its
  centred median window is complete (``half`` beats of lookahead) and
  is **provably equal** to the batch path: both flag and replace with
  ``np.median`` over the *original* intervals under the same reflective
  padding, so a record pushed through in arbitrary chunk sizes yields
  bit-identical cleaned values and corrected masks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_in_range, require_positive
from ..errors import SignalError
from .rr import RRSeries

__all__ = [
    "ArtifactReport",
    "StreamingPreprocessor",
    "detect_ectopic_mask",
    "filter_artifacts",
]


@dataclass(frozen=True)
class ArtifactReport:
    """Result of artifact filtering.

    Attributes
    ----------
    series:
        The cleaned series.
    corrected_indices:
        Indices (into the *original* interval array) that were replaced.
    fraction_corrected:
        ``len(corrected_indices) / n_beats`` of the original series.
    """

    series: RRSeries
    corrected_indices: np.ndarray
    fraction_corrected: float


def detect_ectopic_mask(
    intervals: np.ndarray, window: int = 11, tolerance: float = 0.2
) -> np.ndarray:
    """Boolean mask of intervals deviating > *tolerance* from local median.

    A centred running median of *window* beats estimates the local normal
    interval; beats outside ``(1 +/- tolerance)`` of it are flagged —
    the classic ectopic/artifact rule for tachograms.
    """
    rr = np.asarray(intervals, dtype=np.float64)
    if window < 3 or window % 2 == 0:
        raise SignalError(f"window must be an odd integer >= 3, got {window}")
    require_in_range(tolerance, 0.01, 1.0, "tolerance")
    if rr.size < window:
        raise SignalError(
            f"series of {rr.size} beats shorter than window {window}"
        )
    half = window // 2
    padded = np.concatenate([rr[half:0:-1], rr, rr[-2 : -half - 2 : -1]])
    medians = np.empty_like(rr)
    for i in range(rr.size):
        medians[i] = np.median(padded[i : i + window])
    deviation = np.abs(rr - medians) / medians
    return deviation > tolerance


def filter_artifacts(
    series: RRSeries,
    window: int = 11,
    tolerance: float = 0.2,
    max_fraction: float = 0.3,
) -> ArtifactReport:
    """Replace ectopic/artifact intervals with the local median value.

    Replacement (rather than deletion) keeps the beat count and the time
    axis intact, which the fixed-window Welch-Lomb pipeline prefers.
    Raises :class:`SignalError` when more than *max_fraction* of the
    beats are flagged — at that point the recording is unusable rather
    than merely noisy.
    """
    require_positive(max_fraction, "max_fraction")
    flagged = detect_ectopic_mask(series.intervals, window, tolerance)
    fraction = float(np.count_nonzero(flagged)) / series.n_beats
    if fraction > max_fraction:
        raise SignalError(
            f"{fraction:.0%} of beats flagged as artifacts "
            f"(limit {max_fraction:.0%}); recording rejected"
        )
    if not np.any(flagged):
        return ArtifactReport(
            series=series.with_corrected(flagged),
            corrected_indices=np.array([], dtype=np.int64),
            fraction_corrected=0.0,
        )
    cleaned = series.intervals.copy()
    half = window // 2
    padded = np.concatenate(
        [cleaned[half:0:-1], cleaned, cleaned[-2 : -half - 2 : -1]]
    )
    for i in np.flatnonzero(flagged):
        cleaned[i] = np.median(padded[i : i + window])
    return ArtifactReport(
        series=RRSeries(
            times=series.times, intervals=cleaned, corrected=flagged
        ),
        corrected_indices=np.flatnonzero(flagged),
        fraction_corrected=fraction,
    )


class StreamingPreprocessor:
    """Incremental ectopic rejection + artifact interpolation.

    Feed ``(times, intervals)`` chunks with :meth:`push`; each call
    returns the ``(times, cleaned, corrected)`` arrays for every
    interval whose centred median window became complete — interval
    ``i`` resolves once interval ``i + window//2`` has been ingested.
    :meth:`finalize` resolves the final ``window//2`` intervals using
    the same end-reflection the batch path pads with, and enforces the
    batch path's global rules (minimum length, flagged-fraction cap).

    Equality with :func:`filter_artifacts` is structural: the batch
    replacement median is computed over the *pre-replacement* intervals
    (its padded buffer is built before any replacement lands), so the
    detection median and the replacement value coincide — one
    ``np.median`` per position over the original values, which is
    exactly what this class computes.  The only behavioural divergence
    is failure timing: the batch path rejects an unusable recording
    before emitting anything, while the stream has necessarily already
    emitted cleaned beats when :meth:`finalize` discovers the total
    flagged fraction exceeded ``max_fraction`` and raises.
    """

    def __init__(
        self,
        window: int = 11,
        tolerance: float = 0.2,
        max_fraction: float = 0.3,
    ):
        if window < 3 or window % 2 == 0:
            raise SignalError(
                f"window must be an odd integer >= 3, got {window}"
            )
        require_in_range(tolerance, 0.01, 1.0, "tolerance")
        require_positive(max_fraction, "max_fraction")
        self._window = int(window)
        self._half = self._window // 2
        self._tolerance = float(tolerance)
        self._max_fraction = float(max_fraction)
        self._rr = np.empty(0, dtype=np.float64)
        self._times = np.empty(0, dtype=np.float64)
        self._offset = 0  # absolute index of self._rr[0]
        self._t_offset = 0  # absolute index of self._times[0]
        self._next = 0  # next absolute position to resolve
        self._count = 0  # total intervals ingested
        self._n_flagged = 0
        self._finalized = False

    @property
    def n_ingested(self) -> int:
        """Total intervals pushed so far."""
        return self._count

    @property
    def n_flagged(self) -> int:
        """Intervals flagged (and replaced) among the resolved ones."""
        return self._n_flagged

    def _median_at(self, i: int, n_total: int | None) -> float:
        """Centred median of the original intervals around position *i*.

        Reflective indexing reproduces the batch path's padded buffer:
        ``j < 0 -> -j`` at the start, ``j >= n -> 2n - 2 - j`` at the
        end (only applicable once the record length *n* is known).
        """
        idx = np.arange(i - self._half, i + self._half + 1)
        idx = np.abs(idx)
        if n_total is not None:
            over = idx >= n_total
            idx[over] = 2 * n_total - 2 - idx[over]
        return float(np.median(self._rr[idx - self._offset]))

    def _resolve(self, last: int):
        """Resolve positions ``self._next .. last`` (absolute, inclusive)."""
        last = min(last, self._count - 1)
        out_t: list[float] = []
        out_rr: list[float] = []
        out_c: list[bool] = []
        n_total = self._count if self._finalized else None
        while self._next <= last:
            i = self._next
            med = self._median_at(i, n_total)
            raw = float(self._rr[i - self._offset])
            flagged = abs(raw - med) / med > self._tolerance
            out_t.append(float(self._times[i - self._t_offset]))
            out_rr.append(med if flagged else raw)
            out_c.append(bool(flagged))
            self._n_flagged += flagged
            self._next += 1
        # Drop context the next resolutions can no longer reach: a
        # position needs originals back to ``i - half`` only.
        keep_from = max(0, self._next - self._half)
        if keep_from > self._offset:
            self._rr = self._rr[keep_from - self._offset :]
            self._offset = keep_from
        if self._next > self._t_offset:
            self._times = self._times[self._next - self._t_offset :]
            self._t_offset = self._next
        return (
            np.asarray(out_t, dtype=np.float64),
            np.asarray(out_rr, dtype=np.float64),
            np.asarray(out_c, dtype=bool),
        )

    def push(self, times, intervals):
        """Ingest one chunk; return the newly resolved cleaned beats.

        Returns ``(times, cleaned, corrected)`` arrays (possibly empty
        while the median window is still filling).
        """
        if self._finalized:
            raise SignalError("preprocessor already finalized")
        t = np.asarray(times, dtype=np.float64)
        rr = np.asarray(intervals, dtype=np.float64)
        if t.ndim != 1 or rr.ndim != 1 or t.size != rr.size:
            raise SignalError(
                "push needs matching 1-D times and intervals, got shapes "
                f"{t.shape} and {rr.shape}"
            )
        self._times = np.concatenate([self._times, t])
        self._rr = np.concatenate([self._rr, rr])
        self._count += rr.size
        return self._resolve(self._count - self._half - 1)

    def finalize(self):
        """Resolve the tail; enforce the batch path's global rules.

        Returns the final ``(times, cleaned, corrected)`` arrays.
        Raises :class:`SignalError` when the record was shorter than
        the median window or when the total flagged fraction exceeds
        ``max_fraction`` — the same conditions the batch path rejects.
        """
        if self._finalized:
            raise SignalError("preprocessor already finalized")
        if self._count < self._window:
            raise SignalError(
                f"series of {self._count} beats shorter than window "
                f"{self._window}"
            )
        self._finalized = True
        out = self._resolve(self._count - 1)
        fraction = self._n_flagged / self._count
        if fraction > self._max_fraction:
            raise SignalError(
                f"{fraction:.0%} of beats flagged as artifacts "
                f"(limit {self._max_fraction:.0%}); recording rejected"
            )
        return out
