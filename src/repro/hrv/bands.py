"""HRV frequency bands and band-power integration.

The paper's quality metric integrates the periodogram over the standard
short-term HRV bands (Section VI): LFP over 0.04-0.15 Hz and HFP over
0.15-0.4 Hz, with the remaining low-end power reported as ULF in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_1d_float_array
from ..errors import SignalError

__all__ = [
    "FrequencyBand",
    "ULF_BAND",
    "VLF_BAND",
    "LF_BAND",
    "HF_BAND",
    "STANDARD_BANDS",
    "band_power",
    "band_powers",
]


@dataclass(frozen=True)
class FrequencyBand:
    """A half-open frequency interval ``[low, high)`` in Hz."""

    name: str
    low: float
    high: float

    def __post_init__(self):
        if not 0.0 <= self.low < self.high:
            raise SignalError(
                f"invalid band {self.name}: [{self.low}, {self.high})"
            )

    def contains(self, frequencies: np.ndarray) -> np.ndarray:
        """Boolean mask of grid frequencies inside the band."""
        f = np.asarray(frequencies, dtype=np.float64)
        return (f >= self.low) & (f < self.high)

    @property
    def width(self) -> float:
        return self.high - self.low


#: Ultra-low-frequency remainder below the VLF band (Fig. 8's "ULF").
ULF_BAND = FrequencyBand("ULF", 0.0, 0.0033)
#: Very-low-frequency band.
VLF_BAND = FrequencyBand("VLF", 0.0033, 0.04)
#: Low-frequency band — the paper's LFP integration range.
LF_BAND = FrequencyBand("LF", 0.04, 0.15)
#: High-frequency band — the paper's HFP integration range.
HF_BAND = FrequencyBand("HF", 0.15, 0.40)

STANDARD_BANDS = (ULF_BAND, VLF_BAND, LF_BAND, HF_BAND)


def _unpack(spectrum, frequencies=None):
    """Accept a LombSpectrum-like object or explicit (freqs, power) arrays."""
    if frequencies is not None:
        freqs = as_1d_float_array(frequencies, "frequencies")
        power = as_1d_float_array(spectrum, "power")
    else:
        freqs = as_1d_float_array(spectrum.frequencies, "spectrum.frequencies")
        power = as_1d_float_array(spectrum.power, "spectrum.power")
    if freqs.size != power.size:
        raise SignalError(
            f"frequencies and power must match, got {freqs.size} and {power.size}"
        )
    if freqs.size < 2:
        raise SignalError("spectrum too short for band integration")
    return freqs, power


def band_power(spectrum, band: FrequencyBand, frequencies=None) -> float:
    """Integrated power of *spectrum* inside *band* (rectangle rule).

    *spectrum* may be a :class:`~repro.lomb.fast.LombSpectrum` (or any
    object exposing ``frequencies`` and ``power``) or a plain power array
    combined with the *frequencies* keyword.
    """
    freqs, power = _unpack(spectrum, frequencies)
    df = float(np.median(np.diff(freqs)))
    mask = band.contains(freqs)
    return float(np.sum(power[mask]) * df)


def band_powers(spectrum, bands=STANDARD_BANDS, frequencies=None) -> dict[str, float]:
    """Integrated power of every band, keyed by band name."""
    return {
        band.name: band_power(spectrum, band, frequencies=frequencies)
        for band in bands
    }
