"""Sinus-arrhythmia detection from HRV spectra (paper Section VI).

The paper's test case: "a ratio of LFP over HFP much less than 1
indicates a sinus arrhythmia condition".  The detector thresholds the
LF/HF ratio of a periodogram — or the per-window ratios of a Welch-Lomb
time-frequency distribution — and reports the decision together with the
evidence, so experiments can check that pruning never flips a diagnosis
(the paper's headline robustness claim).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_positive
from ..errors import SignalError
from .metrics import lf_hf_ratio

__all__ = ["DetectionResult", "SinusArrhythmiaDetector"]


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of a sinus-arrhythmia screening.

    Attributes
    ----------
    is_arrhythmia:
        Decision: LF/HF ratio below the threshold.
    ratio:
        The LF/HF ratio the decision was based on (mean ratio for
        multi-window screenings).
    threshold:
        Decision threshold used.
    window_ratios:
        Per-window ratios when a time-frequency distribution was
        screened; length-1 array for single spectra.
    """

    is_arrhythmia: bool
    ratio: float
    threshold: float
    window_ratios: np.ndarray

    @property
    def margin(self) -> float:
        """Signed distance from the threshold (negative = arrhythmia side)."""
        return self.ratio - self.threshold


class SinusArrhythmiaDetector:
    """LF/HF-ratio threshold detector.

    Parameters
    ----------
    threshold:
        Decision boundary on the LF/HF ratio.  The paper's criterion is
        "much less than 1"; 1.0 is the conventional default.
    """

    def __init__(self, threshold: float = 1.0):
        self.threshold = require_positive(threshold, "threshold")

    def classify_spectrum(self, spectrum, frequencies=None) -> DetectionResult:
        """Screen a single periodogram."""
        ratio = lf_hf_ratio(spectrum, frequencies=frequencies)
        return DetectionResult(
            is_arrhythmia=bool(ratio < self.threshold),
            ratio=ratio,
            threshold=self.threshold,
            window_ratios=np.array([ratio]),
        )

    def classify_windows(self, welch_result) -> DetectionResult:
        """Screen a Welch-Lomb result window by window.

        The decision uses the mean of the per-window LF/HF ratios, which
        is how the paper aggregates its hourly time-frequency
        distributions (Section VI.A).
        """
        spectrogram = np.asarray(welch_result.spectrogram, dtype=np.float64)
        if spectrogram.ndim != 2 or spectrogram.shape[0] < 1:
            raise SignalError("welch_result has no analysable windows")
        ratios = np.array(
            [
                lf_hf_ratio(row, frequencies=welch_result.frequencies)
                for row in spectrogram
            ]
        )
        mean_ratio = float(ratios.mean())
        return DetectionResult(
            is_arrhythmia=bool(mean_ratio < self.threshold),
            ratio=mean_ratio,
            threshold=self.threshold,
            window_ratios=ratios,
        )

    def agreement(self, reference: DetectionResult, other: DetectionResult) -> bool:
        """True when two screenings reach the same decision.

        Used by the evaluation harness to verify that the approximated
        system "does not affect the system detection capability".
        """
        return reference.is_arrhythmia == other.is_arrhythmia
