"""HRV substrate: RR containers, frequency bands, metrics, detection.

Everything between the beat detector and the clinical read-out: the
:class:`RRSeries` container, artifact filtering, the LF/HF band-power
machinery the paper's evaluation is built on, time-domain HRV metrics,
and the sinus-arrhythmia detector used as the end-to-end test case.
"""

from .bands import (
    HF_BAND,
    LF_BAND,
    STANDARD_BANDS,
    ULF_BAND,
    VLF_BAND,
    FrequencyBand,
    band_power,
    band_powers,
)
from .detection import DetectionResult, SinusArrhythmiaDetector
from .metrics import (
    lf_hf_ratio,
    pnn50,
    ratio_error,
    rmssd,
    sdnn,
    sdsd,
    time_domain_summary,
)
from .preprocessing import ArtifactReport, detect_ectopic_mask, filter_artifacts
from .rr import RRSeries

__all__ = [
    "ArtifactReport",
    "DetectionResult",
    "FrequencyBand",
    "HF_BAND",
    "LF_BAND",
    "RRSeries",
    "STANDARD_BANDS",
    "SinusArrhythmiaDetector",
    "ULF_BAND",
    "VLF_BAND",
    "band_power",
    "band_powers",
    "detect_ectopic_mask",
    "filter_artifacts",
    "lf_hf_ratio",
    "pnn50",
    "ratio_error",
    "rmssd",
    "sdnn",
    "sdsd",
    "time_domain_summary",
]
