"""HRV substrate: RR containers, frequency bands, metrics, detection.

Everything between the beat detector and the clinical read-out: the
:class:`RRSeries` container, artifact filtering, the LF/HF band-power
machinery the paper's evaluation is built on, time-domain HRV metrics,
and the sinus-arrhythmia detector used as the end-to-end test case.
"""

from .bands import (
    HF_BAND,
    LF_BAND,
    STANDARD_BANDS,
    ULF_BAND,
    VLF_BAND,
    FrequencyBand,
    band_power,
    band_powers,
)
from .detection import DetectionResult, SinusArrhythmiaDetector
from .metrics import (
    FLAG_ARTIFACT_RUN,
    FLAG_FEW_BEATS,
    FLAG_HIGH_CORRECTED,
    WindowMetrics,
    lf_hf_ratio,
    pnn20,
    pnn50,
    ratio_error,
    rmssd,
    sdnn,
    sdsd,
    time_domain_summary,
    window_metrics_batch,
)
from .preprocessing import (
    ArtifactReport,
    StreamingPreprocessor,
    detect_ectopic_mask,
    filter_artifacts,
)
from .rr import RRSeries

__all__ = [
    "ArtifactReport",
    "DetectionResult",
    "FLAG_ARTIFACT_RUN",
    "FLAG_FEW_BEATS",
    "FLAG_HIGH_CORRECTED",
    "FrequencyBand",
    "HF_BAND",
    "LF_BAND",
    "RRSeries",
    "STANDARD_BANDS",
    "SinusArrhythmiaDetector",
    "StreamingPreprocessor",
    "ULF_BAND",
    "VLF_BAND",
    "WindowMetrics",
    "band_power",
    "band_powers",
    "detect_ectopic_mask",
    "filter_artifacts",
    "lf_hf_ratio",
    "pnn20",
    "pnn50",
    "ratio_error",
    "rmssd",
    "sdnn",
    "sdsd",
    "time_domain_summary",
    "window_metrics_batch",
]
