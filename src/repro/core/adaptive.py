"""Run-time quality controller (the Q_DES loop of paper Fig. 9).

"In any case the degree of pruning could be tuned for obtaining maximum
energy savings based on the acceptable distortion (Q_DES)."  The
controller profiles every pruning mode once on a calibration cohort
(distortion of the LF/HF ratio vs. energy savings), then answers
run-time queries: *given an acceptable distortion, which mode yields the
largest savings?*
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_in_range
from ..errors import ConfigurationError
from ..ffts.pruning import PruningSpec
from ..hrv.metrics import ratio_error
from ..hrv.rr import RRSeries
from ..platform.node import SensorNodeModel
from .config import PSAConfig
from .system import ConventionalPSA, QualityScalablePSA

__all__ = ["ModeProfile", "QualityController"]


@dataclass(frozen=True)
class ModeProfile:
    """Measured behaviour of one pruning mode.

    Attributes
    ----------
    spec:
        The pruning configuration.
    distortion:
        Mean relative LF/HF-ratio error vs. the conventional system
        over the profiling cohort.
    energy_savings:
        Energy savings (with VFS) vs. the conventional system.
    cycle_reduction:
        Cycle-count reduction of the FFT kernel.
    """

    spec: PruningSpec
    distortion: float
    energy_savings: float
    cycle_reduction: float


#: The mode ladder profiled by default: exact, band drop, then the three
#: twiddle sets, each in static and dynamic flavours.
def _default_mode_ladder() -> tuple[PruningSpec, ...]:
    modes: list[PruningSpec] = [PruningSpec.none(), PruningSpec.band_only()]
    for set_index in (1, 2, 3):
        modes.append(PruningSpec.paper_mode(set_index))
        modes.append(PruningSpec.paper_mode(set_index, dynamic=True))
    return tuple(modes)


class QualityController:
    """Q_DES-driven mode selector.

    Build it once with :meth:`profile` (design time), then call
    :meth:`select` with the acceptable distortion to get the most
    energy-efficient compliant mode — the "prune & adjust" loop the
    paper sketches next to Fig. 9.
    """

    def __init__(self, profiles: tuple[ModeProfile, ...]):
        if not profiles:
            raise ConfigurationError("controller needs at least one profile")
        self.profiles = tuple(
            sorted(profiles, key=lambda p: p.energy_savings, reverse=True)
        )

    @classmethod
    def profile(
        cls,
        recordings: list[RRSeries],
        config: PSAConfig | None = None,
        node: SensorNodeModel | None = None,
        modes: tuple[PruningSpec, ...] | None = None,
        apply_vfs: bool = True,
    ) -> "QualityController":
        """Profile the mode ladder on a calibration cohort."""
        if not recordings:
            raise ConfigurationError("profiling needs at least one recording")
        config = config or PSAConfig()
        node = node or SensorNodeModel()
        modes = modes or _default_mode_ladder()
        reference_system = ConventionalPSA(config)
        references = [reference_system.analyze(rr).lf_hf for rr in recordings]

        profiles = []
        for spec in modes:
            system = QualityScalablePSA(config, pruning=spec, node=node)
            errors = []
            for rr, reference in zip(recordings, references):
                approx = system.analyze(rr).lf_hf
                errors.append(ratio_error(approx, reference))
            report = system.energy_report(
                reference_system, apply_vfs=apply_vfs, fft_only=True
            )
            profiles.append(
                ModeProfile(
                    spec=spec,
                    distortion=float(np.mean(errors)),
                    energy_savings=report.energy_savings,
                    cycle_reduction=report.cycle_reduction,
                )
            )
        return cls(tuple(profiles))

    def select(self, q_des: float) -> ModeProfile:
        """Most energy-saving mode whose distortion is within *q_des*.

        Parameters
        ----------
        q_des:
            Acceptable relative LF/HF distortion (e.g. 0.05 for 5 %).
        """
        require_in_range(q_des, 0.0, 1.0, "q_des")
        compliant = [p for p in self.profiles if p.distortion <= q_des]
        if not compliant:
            # Fall back to the most accurate mode available.
            return min(self.profiles, key=lambda p: p.distortion)
        return compliant[0]  # profiles sorted by savings, descending

    def frontier(self) -> tuple[ModeProfile, ...]:
        """The Pareto frontier (distortion vs. savings), best-first."""
        frontier: list[ModeProfile] = []
        best_distortion = float("inf")
        for profile in self.profiles:  # descending savings
            if profile.distortion < best_distortion:
                frontier.append(profile)
                best_distortion = profile.distortion
        return tuple(frontier)
