"""Configuration of the PSA systems.

One frozen dataclass collects every pipeline parameter the paper fixes:
the 512-point FFT workspace, the 2-minute / 50 %-overlap Welch windows,
the HRV frequency range and the wavelet basis (Haar, chosen in Section
V.B for lowest complexity).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .._validation import require_in_range, require_positive, require_power_of_two
from ..errors import ConfigurationError
from ..wavelets.filters import get_filter

__all__ = ["PSAConfig"]


@dataclass(frozen=True)
class PSAConfig:
    """Parameters shared by the conventional and proposed PSA systems.

    Attributes
    ----------
    fft_size:
        Fast-Lomb workspace length N (power of two; paper: 512).
    window_seconds:
        Welch window duration (paper: 2 minutes).
    overlap:
        Fractional window overlap (paper: 50 %).
    oversample:
        Lomb frequency oversampling factor (``df = 1/(oversample * T)``).
    max_frequency:
        Top of the analysed range in Hz; 0.4 covers the HF band.
    basis:
        Wavelet basis of the proposed system's FFT.
    scaling:
        Periodogram scaling passed to Fast-Lomb (the Welch-Lomb
        de-normalisation by default).
    """

    fft_size: int = 512
    window_seconds: float = 120.0
    overlap: float = 0.5
    oversample: float = 2.0
    max_frequency: float = 0.4
    basis: str = "haar"
    scaling: str = "denormalized"

    def __post_init__(self):
        require_power_of_two(self.fft_size, "fft_size")
        require_positive(self.window_seconds, "window_seconds")
        require_in_range(self.overlap, 0.0, 0.95, "overlap")
        if self.oversample < 1.0:
            raise ConfigurationError(
                f"oversample must be >= 1, got {self.oversample}"
            )
        require_positive(self.max_frequency, "max_frequency")
        get_filter(self.basis)  # validates the basis name
        if self.scaling not in ("standard", "denormalized"):
            raise ConfigurationError(
                f"scaling must be 'standard' or 'denormalized', got {self.scaling!r}"
            )
        # The frequency grid must reach max_frequency without aliasing the
        # extirpolation workspace (see FastLomb._grid).
        needed_bins = self.max_frequency * self.oversample * self.window_seconds
        if needed_bins > self.fft_size // 2 - 1:
            raise ConfigurationError(
                f"window of {self.window_seconds} s with fft_size "
                f"{self.fft_size} cannot reach {self.max_frequency} Hz"
            )

    def with_basis(self, basis: str) -> "PSAConfig":
        """Copy with a different wavelet basis."""
        return replace(self, basis=basis)

    def with_fft_size(self, fft_size: int) -> "PSAConfig":
        """Copy with a different workspace size."""
        return replace(self, fft_size=fft_size)

    @property
    def nominal_beats_per_window(self) -> int:
        """Expected beat count of one window at 70 bpm (for planning)."""
        return int(self.window_seconds * 70.0 / 60.0)
