"""The two PSA systems the paper compares.

:class:`ConventionalPSA` is the baseline of Section II.B: Welch-Lomb
with a split-radix FFT.  :class:`QualityScalablePSA` is the proposed
system: the same pipeline with the FFT swapped for the pruned
DWT-based kernel, plus the energy-evaluation hooks of Section VI
(static/dynamic pruning, VFS against the conventional deadline).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..errors import SignalError
from ..ffts.backends import FFTBackend
from ..ffts.opcount import OpCounts
from ..ffts.plancache import split_radix_plan, wavelet_plan
from ..ffts.pruning import PruningSpec
from ..hrv.bands import STANDARD_BANDS, band_powers
from ..hrv.detection import DetectionResult, SinusArrhythmiaDetector
from ..hrv.metrics import lf_hf_ratio
from ..hrv.rr import RRSeries
from ..lomb.fast import FastLomb
from ..lomb.welch import WelchLomb, WelchLombResult
from ..platform.node import ComparisonReport, SensorNodeModel
from .config import PSAConfig

__all__ = ["PSAResult", "ConventionalPSA", "QualityScalablePSA"]

#: Sentinel distinguishing "kwarg not passed" from any real value, so the
#: legacy execution kwargs can warn exactly when they are used.
_UNSET = object()


@dataclass(frozen=True)
class PSAResult:
    """Output of one PSA run over a recording.

    Attributes
    ----------
    welch:
        The full Welch-Lomb result (spectrogram + average).
    lf_hf:
        LF/HF band-power ratio of the averaged spectrum (Table I metric).
    band_powers:
        Integrated ULF/VLF/LF/HF powers of the averaged spectrum.
    window_ratios:
        Per-window LF/HF ratios (the hourly-monitoring view).
    detection:
        Sinus-arrhythmia screening of the averaged windows.
    counts:
        Total operation counts (``None`` unless requested).
    """

    welch: WelchLombResult
    lf_hf: float
    band_powers: dict[str, float]
    window_ratios: np.ndarray
    detection: DetectionResult
    counts: OpCounts | None = None

    @property
    def frequencies(self) -> np.ndarray:
        return self.welch.frequencies

    @property
    def averaged_power(self) -> np.ndarray:
        return self.welch.averaged

    @property
    def window_metrics(self):
        """Per-window time-domain metrics and quality flags.

        One :class:`~repro.hrv.metrics.WindowMetrics` per analysed
        window, aligned with ``welch.spectrogram`` rows (empty when the
        run predates or skipped metrics computation).
        """
        return self.welch.window_metrics


class _BasePSA:
    """Shared pipeline driver; subclasses supply the FFT backend."""

    def __init__(self, config: PSAConfig | None = None):
        self.config = config or PSAConfig()
        self._backend = self._build_backend()
        self._welch = WelchLomb(
            FastLomb(
                workspace_size=self.config.fft_size,
                oversample=self.config.oversample,
                max_frequency=self.config.max_frequency,
                backend=self._backend,
                scaling=self.config.scaling,
            ),
            window_seconds=self.config.window_seconds,
            overlap=self.config.overlap,
        )
        self._detector = SinusArrhythmiaDetector()
        #: Band-power integration edges reported in results; the engine
        #: facade overrides this from ``EngineConfig.bands``.
        self.bands = STANDARD_BANDS

    def _build_backend(self) -> FFTBackend:
        raise NotImplementedError

    @property
    def backend(self) -> FFTBackend:
        """The FFT kernel this system runs."""
        return self._backend

    @property
    def welch(self) -> WelchLomb:
        """The windowed Welch-Lomb engine driving this system."""
        return self._welch

    def analyze(
        self, rr: RRSeries, count_ops: bool = False, batched=_UNSET
    ) -> PSAResult:
        """Run the full PSA over an RR recording.

        Execution settings (provider, chunk size, batching) live on the
        engine facade (:mod:`repro.engine`); passing ``batched=`` here
        is deprecated — the per-window sequential oracle remains
        reachable through
        :meth:`WelchLomb.analyze_windows(batched=False) <repro.lomb.welch.WelchLomb.analyze_windows>`.
        """
        if not isinstance(rr, RRSeries):
            raise SignalError("analyze expects an RRSeries")
        if batched is _UNSET:
            batched = True
        else:
            warnings.warn(
                "analyze(batched=...) is deprecated; use the repro.engine "
                "facade to choose execution settings",
                DeprecationWarning,
                stacklevel=2,
            )
        welch = self._welch.analyze_windows(
            rr.times,
            rr.intervals,
            count_ops=count_ops,
            batched=bool(batched),
            corrected=rr.corrected,
        )
        return self._finalize(welch)

    def _finalize(self, welch: WelchLombResult) -> PSAResult:
        """Clinical post-processing of one recording's Welch result.

        Shared by :meth:`analyze` and :meth:`analyze_cohort`, so the
        fleet path reports exactly what the single-recording path does.
        """
        averaged = welch.averaged_spectrum()
        ratios = np.array(
            [
                lf_hf_ratio(row, frequencies=welch.frequencies)
                for row in welch.spectrogram
            ]
        )
        detection = self._detector.classify_windows(welch)
        return PSAResult(
            welch=welch,
            lf_hf=lf_hf_ratio(averaged),
            band_powers=band_powers(averaged, bands=self.bands),
            window_ratios=ratios,
            detection=detection,
            counts=welch.counts,
        )

    def to_engine_config(
        self,
        jobs: int | None = 1,
        provider: str | None = None,
        chunk_windows: int | None = None,
    ):
        """This system's declarative :class:`~repro.engine.EngineConfig`.

        The bridge from the legacy object-construction style to the
        facade: the returned config rebuilds (or describes) exactly
        this system — kind, pruning spec, pipeline geometry and band
        edges — plus the given execution settings.
        """
        from ..engine.config import EngineConfig

        return EngineConfig(
            system=(
                "quality-scalable"
                if isinstance(self, QualityScalablePSA)
                else "conventional"
            ),
            pruning=getattr(self, "pruning", PruningSpec.none()),
            psa=self.config,
            provider=provider,
            chunk_windows=chunk_windows,
            jobs=jobs,
            bands=self.bands,
        )

    def analyze_cohort(
        self,
        recordings,
        count_ops: bool = False,
        jobs=_UNSET,
        provider=_UNSET,
    ) -> list[PSAResult]:
        """Run the full PSA over many recordings with the fleet engine.

        Thin delegating wrapper over the engine facade: the cohort runs
        through :meth:`repro.engine.Engine.analyze_cohort` on a
        transient engine wrapping this system, so spectra, averages and
        operation counts are identical to per-recording :meth:`analyze`
        calls.  Passing ``jobs=`` / ``provider=`` here is deprecated —
        those are :class:`~repro.engine.EngineConfig` fields now
        (``Engine(EngineConfig(jobs=..., provider=...))``), kept working
        through this shim.
        """
        if jobs is not _UNSET or provider is not _UNSET:
            warnings.warn(
                "analyze_cohort(jobs=..., provider=...) is deprecated; "
                "these moved to EngineConfig — use "
                "repro.engine.Engine(EngineConfig(jobs=..., provider=...))"
                ".analyze_cohort(...)",
                DeprecationWarning,
                stacklevel=2,
            )
        jobs = 1 if jobs is _UNSET else jobs
        provider = None if provider is _UNSET else provider
        rr_list = list(recordings)
        for rr in rr_list:
            if not isinstance(rr, RRSeries):
                raise SignalError("analyze_cohort expects RRSeries recordings")
        from ..engine.engine import Engine

        config = self.to_engine_config(jobs=jobs, provider=provider)
        with Engine(config, system=self) as engine:
            return engine.analyze_cohort(rr_list, count_ops=count_ops)

    def window_counts(self, n_beats: int | None = None) -> OpCounts:
        """Design-time operation count of one nominal analysis window."""
        beats = n_beats or self.config.nominal_beats_per_window
        return self._welch.analyzer.static_counts(
            beats, self.config.window_seconds
        )


class ConventionalPSA(_BasePSA):
    """The baseline system: Welch-Lomb on a split-radix FFT (Fig. 1a)."""

    def _build_backend(self) -> FFTBackend:
        # Kernels are stateless after planning; the shared cached plan
        # makes fleet-scale system construction O(1) after the first.
        return split_radix_plan(self.config.fft_size)


class QualityScalablePSA(_BasePSA):
    """The proposed system: Welch-Lomb on the pruned DWT-based FFT.

    Parameters
    ----------
    config:
        Shared pipeline configuration.
    pruning:
        The approximation mode (band drop, twiddle sets, static or
        dynamic); defaults to the exact wavelet FFT.
    node:
        Platform model used by :meth:`energy_report`.
    """

    def __init__(
        self,
        config: PSAConfig | None = None,
        pruning: PruningSpec | None = None,
        node: SensorNodeModel | None = None,
    ):
        self.pruning = pruning or PruningSpec.none()
        super().__init__(config)
        self.node = node or SensorNodeModel()

    def _build_backend(self) -> FFTBackend:
        return wavelet_plan(
            self.config.fft_size,
            basis=self.config.basis,
            pruning=self.pruning,
        )

    def energy_report(
        self,
        reference: ConventionalPSA | None = None,
        apply_vfs: bool = True,
        fft_only: bool = False,
        n_beats: int | None = None,
    ) -> ComparisonReport:
        """Energy comparison against the conventional system (Fig. 9).

        Parameters
        ----------
        reference:
            Baseline system; a default-config conventional system is
            built when omitted.
        apply_vfs:
            Allow voltage-frequency scaling within the baseline deadline.
        fft_only:
            Compare the FFT kernels alone (the paper's Fig. 5/9 framing,
            where the FFT dominates the node) instead of whole windows.
        n_beats:
            Beats per window for the whole-window comparison.
        """
        reference = reference or ConventionalPSA(self.config)
        if fft_only:
            mine = self._backend.static_counts()
            theirs = reference.backend.static_counts()
        else:
            mine = self.window_counts(n_beats)
            theirs = reference.window_counts(n_beats)
        return self.node.evaluate_against_baseline(
            mine, theirs, apply_vfs=apply_vfs
        )
