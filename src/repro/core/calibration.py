"""Design-time calibration (paper eq. 3 and Section V).

Determines the thresholds the pruned system ships with:

* the **band threshold** separating significant from less-significant
  DWT output elements, from the expectation ``E{|z_k|}`` over a
  calibration corpus of cardiac windows — this is eq. 3, and it is what
  licenses dropping the highpass band at design time;
* the **dynamic-pruning thresholds**, one per twiddle set, chosen so the
  run-time rule ``|factor| * |data| < threshold`` prunes the target
  fraction of butterfly terms *on average* over the corpus.

The calibration corpus is drawn from the synthetic cohort (the paper
uses "numerous cardiac samples" from PhysioNet for the same purpose).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError
from ..ffts.pruning import TWIDDLE_SETS, PruningSpec, static_twiddle_mask
from ..ffts.wavelet_fft import DYNAMIC_DATA_FRACTION
from ..hrv.rr import RRSeries
from ..lomb.extirpolation import extirpolate
from ..lomb.welch import iter_windows
from ..wavelets.dwt import dwt_level
from ..wavelets.freq import twiddle_pair
from .config import PSAConfig

__all__ = ["CalibrationResult", "calibrate", "extract_calibration_windows"]


@dataclass(frozen=True)
class CalibrationResult:
    """Thresholds derived from the calibration corpus.

    Attributes
    ----------
    lowpass_mean, highpass_mean:
        Corpus averages of ``E{|z_k|}`` over the two DWT half-bands.
    band_threshold:
        The eq. 3 threshold THR separating the bands (geometric mean of
        the two averages).
    band_drop_supported:
        True when the highpass band falls below THR — the design-time
        licence for eq. 7.
    dynamic_thresholds:
        Per twiddle set (1-3): the run-time data-magnitude cutoff.  A
        term whose factor is statically below the set threshold is
        eliminated at run time only when its data proxy ``|re| + |im|``
        also falls below this value; the cutoff sits at the
        ``DYNAMIC_DATA_FRACTION`` quantile of the candidate-data
        distribution over the corpus.
    n_windows:
        Number of calibration windows used.
    """

    lowpass_mean: float
    highpass_mean: float
    band_threshold: float
    band_drop_supported: bool
    dynamic_thresholds: dict[int, float]
    n_windows: int

    def pruning_spec(self, twiddle_set: int, dynamic: bool = False) -> PruningSpec:
        """Build the production :class:`PruningSpec` for a paper mode."""
        spec = PruningSpec.paper_mode(twiddle_set, dynamic=dynamic)
        if dynamic:
            spec = spec.with_dynamic_threshold(self.dynamic_thresholds[twiddle_set])
        return spec


def extract_calibration_windows(
    recordings: list[RRSeries], config: PSAConfig, packed: bool = False
) -> list[np.ndarray]:
    """Extirpolated FFT-input workspaces of every analysis window.

    With ``packed=False`` (default) returns the data workspace alone —
    the Fig. 3(a) view used for sparsity analyses.  With ``packed=True``
    returns exactly what the Fast-Lomb engine feeds the FFT: the data
    workspace in the real part and the window workspace in the imaginary
    part, which is what run-time thresholds must be calibrated on.
    """
    windows: list[np.ndarray] = []
    ndim = config.fft_size
    for series in recordings:
        spans = iter_windows(series.times, config.window_seconds, config.overlap)
        for start, stop in spans:
            if stop - start < 16:
                continue
            t = series.times[start:stop]
            x = series.intervals[start:stop]
            duration = float(t[-1] - t[0])
            if duration <= 0:
                continue
            fac = ndim / (config.oversample * duration)
            positions = np.clip(
                (t - t[0]) * fac, 0.0, np.nextafter(float(ndim), 0.0)
            )
            wk1 = extirpolate(x - x.mean(), positions, ndim)
            if packed:
                doubled = np.mod(2.0 * positions, float(ndim))
                wk2 = extirpolate(np.ones(t.size), doubled, ndim)
                windows.append(wk1 + 1j * wk2)
            else:
                windows.append(wk1)
    if not windows:
        raise CalibrationError("no usable calibration windows extracted")
    return windows


def calibrate(
    recordings: list[RRSeries],
    config: PSAConfig | None = None,
    twiddle_sets: dict[int, float] | None = None,
) -> CalibrationResult:
    """Run the full design-time calibration over a recording corpus."""
    config = config or PSAConfig()
    twiddle_sets = twiddle_sets or TWIDDLE_SETS
    windows = extract_calibration_windows(recordings, config, packed=True)

    # --- eq. 3: expected magnitudes of the DWT output elements --------
    lowpass_mags = []
    highpass_mags = []
    sub_spectra = []
    for window in windows:
        approx, detail = dwt_level(window, config.basis)
        lowpass_mags.append(np.abs(approx))
        highpass_mags.append(np.abs(detail))
        sub_spectra.append(np.fft.fft(approx))
    lowpass_mean = float(np.mean(np.concatenate(lowpass_mags)))
    highpass_mean = float(np.mean(np.concatenate(highpass_mags)))
    if lowpass_mean <= 0:
        raise CalibrationError("degenerate corpus: zero lowpass energy")
    band_threshold = float(np.sqrt(max(lowpass_mean, 1e-30) *
                                   max(highpass_mean, 1e-30)))

    # --- dynamic thresholds: data-magnitude quantiles per set ---------
    # For each set the candidates are the terms whose factor falls below
    # the set's static magnitude threshold; the run-time data cutoff is
    # placed at the DYNAMIC_DATA_FRACTION quantile of those candidates'
    # data proxies, so the expected pruned fraction matches design time.
    hl, _hh = twiddle_pair(config.fft_size, config.basis)
    dynamic_thresholds: dict[int, float] = {}
    for set_index, fraction in twiddle_sets.items():
        keep = static_twiddle_mask(np.abs(hl), fraction)
        candidates = ~keep
        proxies = []
        for spectrum in sub_spectra:
            tiled = np.tile(spectrum, 2)
            proxy = np.abs(tiled.real) + np.abs(tiled.imag)
            proxies.append(proxy[candidates])
        dynamic_thresholds[set_index] = float(
            np.quantile(np.concatenate(proxies), DYNAMIC_DATA_FRACTION)
        )

    return CalibrationResult(
        lowpass_mean=lowpass_mean,
        highpass_mean=highpass_mean,
        band_threshold=band_threshold,
        band_drop_supported=bool(highpass_mean < band_threshold),
        dynamic_thresholds=dynamic_thresholds,
        n_windows=len(windows),
    )
