"""Core: the paper's quality-scalable PSA systems.

The conventional (split-radix Welch-Lomb) and proposed (pruned
wavelet-FFT) systems, the shared configuration, design-time threshold
calibration (eq. 3) and the Q_DES-driven run-time mode controller.
"""

from .adaptive import ModeProfile, QualityController
from .calibration import CalibrationResult, calibrate, extract_calibration_windows
from .config import PSAConfig
from .system import ConventionalPSA, PSAResult, QualityScalablePSA

__all__ = [
    "CalibrationResult",
    "ConventionalPSA",
    "ModeProfile",
    "PSAConfig",
    "PSAResult",
    "QualityController",
    "QualityScalablePSA",
    "calibrate",
    "extract_calibration_windows",
]
