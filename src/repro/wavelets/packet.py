"""Full binary wavelet-packet decomposition.

The first stage of the DWT-based FFT (paper Fig. 4) is a *binary tree*
of DWTs: unlike the Mallat transform, **both** the approximation and the
detail band are split again at every level, down to length-1 leaves.
This module computes that tree efficiently on stacked subband rows so the
FFT kernel and the sparsity analyses can share it.

Row ordering: at depth ``d`` the table has ``2^d`` rows of length
``N / 2^d``; splitting row ``i`` produces rows ``2i`` (lowpass) and
``2i + 1`` (highpass) at depth ``d + 1``.  A row index read MSB-first is
therefore the L/H path from the root.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import require_power_of_two
from ..errors import TransformError
from .filters import WaveletFilter, get_filter

__all__ = ["PacketTable", "wavelet_packet", "packet_level"]


def _resolve(basis) -> WaveletFilter:
    if isinstance(basis, WaveletFilter):
        return basis
    return get_filter(basis)


def packet_level(rows: np.ndarray, basis="haar") -> np.ndarray:
    """Split every row of a ``(blocks, m)`` table into its two half-bands.

    Returns a ``(2 * blocks, m // 2)`` table with lowpass outputs on even
    rows and highpass outputs on odd rows.
    """
    bank = _resolve(basis)
    if rows.ndim != 2:
        raise TransformError(f"packet_level expects a 2-D table, got {rows.shape}")
    blocks, m = rows.shape
    if m % 2 != 0 or m < 2:
        raise TransformError(f"row length must be even and >= 2, got {m}")
    half = m // 2
    out_dtype = np.result_type(rows.dtype, np.float64)
    out = np.zeros((2 * blocks, half), dtype=out_dtype)
    base = 2 * np.arange(half)
    for j in range(bank.length):
        cols = (base + j) % m
        picked = rows[:, cols]
        out[0::2] += bank.lowpass[j] * picked
        out[1::2] += bank.highpass[j] * picked
    return out


@dataclass(frozen=True)
class PacketTable:
    """Wavelet-packet coefficients at every depth of the binary tree.

    Attributes
    ----------
    levels:
        ``levels[d]`` is the ``(2^d, N/2^d)`` coefficient table at depth
        ``d``; ``levels[0]`` is the input signal as a single row.
    basis:
        Wavelet basis name.
    """

    levels: tuple[np.ndarray, ...]
    basis: str

    @property
    def depth(self) -> int:
        """Depth of the deepest computed level."""
        return len(self.levels) - 1

    @property
    def size(self) -> int:
        """Length N of the analysed signal."""
        return int(self.levels[0].shape[1])

    def band(self, depth: int, index: int) -> np.ndarray:
        """Coefficients of subband *index* at the given *depth*."""
        table = self.levels[depth]
        if not 0 <= index < table.shape[0]:
            raise TransformError(
                f"band index {index} out of range at depth {depth}"
            )
        return table[index]

    def highpass_energy_fraction(self, depth: int = 1) -> float:
        """Fraction of total signal energy in highpass-rooted subbands.

        At depth 1 this is the quantity behind paper Fig. 3: for
        extirpolated RR windows the highpass half-band carries a tiny
        fraction of the energy, which justifies pruning it (eq. 7).
        """
        table = self.levels[depth]
        rows = table.shape[0]
        hp_rows = [i for i in range(rows) if i >= rows // 2] if depth == 1 else [
            i for i in range(rows) if (i >> (depth - 1)) & 1
        ]
        total = float(np.sum(np.abs(table) ** 2))
        if total == 0.0:
            return 0.0
        hp = float(np.sum(np.abs(table[hp_rows]) ** 2))
        return hp / total


def wavelet_packet(x, basis="haar", depth: int | None = None) -> PacketTable:
    """Compute the full binary wavelet-packet tree of *x*.

    Parameters
    ----------
    x:
        Input vector whose length is a power of two (real or complex).
    basis:
        Wavelet basis name or :class:`WaveletFilter`.
    depth:
        How many levels to compute; ``None`` means all the way down to
        length-1 leaves (what the DWT-based FFT uses).
    """
    arr = np.atleast_2d(np.asarray(x))
    if arr.shape[0] != 1:
        raise TransformError("wavelet_packet expects a single 1-D signal")
    n = require_power_of_two(arr.shape[1], "len(x)")
    max_depth = int(np.log2(n))
    if depth is None:
        depth = max_depth
    if not 0 <= depth <= max_depth:
        raise TransformError(f"depth must be in [0, {max_depth}], got {depth}")
    bank = _resolve(basis)
    levels = [arr.copy()]
    for _ in range(depth):
        levels.append(packet_level(levels[-1], bank))
    return PacketTable(levels=tuple(levels), basis=bank.name)
