"""Dense matrix forms of the transforms used in the paper's derivation.

Section IV.B of the paper manipulates the DFT matrix ``F_N``, the DWT
matrix ``W_N`` and the equivalent transform ``G = F_N W_N^T`` (eq. 2/6).
These dense builders exist so tests and analyses can verify the operator
identities exactly; the production kernels in :mod:`repro.ffts` never
materialise them.
"""

from __future__ import annotations

import numpy as np

from .._validation import require_power_of_two
from ..errors import TransformError
from .filters import WaveletFilter, get_filter

__all__ = [
    "dwt_matrix",
    "packet_matrix",
    "dft_matrix",
    "even_odd_permutation_matrix",
    "butterfly_block_matrix",
]


def _resolve(basis) -> WaveletFilter:
    if isinstance(basis, WaveletFilter):
        return basis
    return get_filter(basis)


def dwt_matrix(n: int, basis="haar") -> np.ndarray:
    """Single-level periodic DWT matrix ``W_N`` (paper eq. 4).

    Row ``r < N/2`` holds the lowpass filter placed (circularly) at shift
    ``2r``; row ``N/2 + r`` holds the highpass filter.  For orthonormal
    banks the result satisfies ``W_N @ W_N.T == I``.
    """
    n = require_power_of_two(n, "n")
    bank = _resolve(basis)
    if n < 2:
        raise TransformError("dwt_matrix needs n >= 2")
    w = np.zeros((n, n), dtype=np.float64)
    for r in range(n // 2):
        for j in range(bank.length):
            col = (2 * r + j) % n
            w[r, col] += bank.lowpass[j]
            w[n // 2 + r, col] += bank.highpass[j]
    return w


def packet_matrix(n: int, basis="haar", depth: int | None = None) -> np.ndarray:
    """Full binary wavelet-packet analysis matrix of the given depth.

    Applies :func:`dwt_matrix` recursively to *both* half-bands, which is
    the first stage of the DWT-based FFT (Fig. 4: the binary tree of
    DWTs).  ``depth=None`` recurses down to length-1 leaves.
    """
    n = require_power_of_two(n, "n")
    max_depth = int(np.log2(n))
    if depth is None:
        depth = max_depth
    if not 0 <= depth <= max_depth:
        raise TransformError(f"depth must be in [0, {max_depth}], got {depth}")
    result = np.eye(n)
    size = n
    for _ in range(depth):
        stage = np.zeros((n, n))
        blocks = n // size
        w = dwt_matrix(size, basis)
        for b in range(blocks):
            sl = slice(b * size, (b + 1) * size)
            stage[sl, sl] = w
        result = stage @ result
        size //= 2
    return result


def dft_matrix(n: int) -> np.ndarray:
    """The DFT matrix ``F_N`` with entries ``exp(-2*pi*i*j*k / N)``."""
    if n < 1:
        raise TransformError("dft_matrix needs n >= 1")
    jk = np.outer(np.arange(n), np.arange(n))
    return np.exp(-2j * np.pi * jk / n)


def even_odd_permutation_matrix(n: int) -> np.ndarray:
    """The even/odd separation matrix ``P_N`` from paper eq. 5.

    Maps ``x`` to ``[x[0], x[2], ..., x[1], x[3], ...]`` so that
    ``F_N = [I D; I -D] diag(F_{N/2}, F_{N/2}) P_N`` (the radix-2 split).
    """
    n = require_power_of_two(n, "n")
    p = np.zeros((n, n))
    half = n // 2
    for i in range(half):
        p[i, 2 * i] = 1.0
        p[half + i, 2 * i + 1] = 1.0
    return p


def butterfly_block_matrix(n: int, basis="haar") -> np.ndarray:
    """The block ``[A B; C D]`` of diagonal twiddle matrices (paper eq. 6).

    ``A`` and ``C`` hold the length-N DFT of the lowpass filter (first and
    second halves of the frequency axis); ``B`` and ``D`` the DFT of the
    highpass filter.  Satisfies::

        F_N == butterfly_block_matrix(N) @ block_diag(F_{N/2}, F_{N/2}) @ W_N
    """
    n = require_power_of_two(n, "n")
    bank = _resolve(basis)
    k = np.arange(n)
    hl = np.zeros(n, dtype=np.complex128)
    hh = np.zeros(n, dtype=np.complex128)
    for j in range(bank.length):
        phase = np.exp(-2j * np.pi * j * k / n)
        hl += bank.lowpass[j] * phase
        hh += bank.highpass[j] * phase
    half = n // 2
    block = np.zeros((n, n), dtype=np.complex128)
    block[:half, :half] = np.diag(hl[:half])          # A
    block[:half, half:] = np.diag(hh[:half])          # B
    block[half:, :half] = np.diag(hl[half:])          # C
    block[half:, half:] = np.diag(hh[half:])          # D
    return block
