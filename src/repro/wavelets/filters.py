"""Orthonormal wavelet filter banks (Haar and Daubechies families).

The paper evaluates its DWT-based FFT with the Haar, Db2 and Db4 bases
(Section IV.B); Db6 and Db8 are provided as extensions for the basis
trade-off ablation.  Filters are stored in the *analysis by correlation*
convention used throughout this library:

    lowpass output   xL[n] = sum_j h[j] * x[(2n + j) mod M]
    highpass output  xH[n] = sum_j g[j] * x[(2n + j) mod M]

with the quadrature-mirror relation ``g[j] = (-1)^j * h[L-1-j]``.  Under
this convention the wavelet-domain factorization of the DFT (paper eq. 6)
holds with twiddle factors equal to the plain DFT of the filter taps, see
:mod:`repro.wavelets.freq`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError

__all__ = ["WaveletFilter", "get_filter", "available_bases", "PAPER_BASES"]


def _haar_taps() -> list[float]:
    s = 1.0 / math.sqrt(2.0)
    return [s, s]


def _db2_taps() -> list[float]:
    """Daubechies-2 (4-tap) lowpass coefficients in closed form."""
    r3 = math.sqrt(3.0)
    d = 4.0 * math.sqrt(2.0)
    return [(1 + r3) / d, (3 + r3) / d, (3 - r3) / d, (1 - r3) / d]


# Daubechies lowpass taps for longer filters (normalised so sum = sqrt(2)).
_DB4_TAPS = [
    0.23037781330885523,
    0.7148465705525415,
    0.6308807679295904,
    -0.02798376941698385,
    -0.18703481171888114,
    0.030841381835986965,
    0.032883011666982945,
    -0.010597401784997278,
]

_DB6_TAPS = [
    0.11154074335008017,
    0.4946238903983854,
    0.7511339080215775,
    0.3152503517092432,
    -0.22626469396516913,
    -0.12976686756709563,
    0.09750160558707936,
    0.02752286553001629,
    -0.031582039318031156,
    0.0005538422009938016,
    0.004777257511010651,
    -0.001077301085308479,
]

_DB8_TAPS = [
    0.05441584224308161,
    0.3128715909144659,
    0.6756307362980128,
    0.5853546836548691,
    -0.015829105256023893,
    -0.2840155429624281,
    0.00047248457399797254,
    0.128747426620186,
    -0.01736930100202211,
    -0.04408825393106472,
    0.013981027917015516,
    0.008746094047015655,
    -0.00487035299301066,
    -0.0003917403729959771,
    0.0006754494059985568,
    -0.00011747678400228192,
]


@dataclass(frozen=True)
class WaveletFilter:
    """An orthonormal two-channel filter bank.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"haar"``, ``"db2"``.
    lowpass:
        Lowpass (scaling) analysis taps ``h``; ``sum(h) == sqrt(2)``.
    highpass:
        Highpass (wavelet) analysis taps ``g`` derived from ``h`` by the
        quadrature-mirror relation; ``sum(g) == 0``.
    """

    name: str
    lowpass: np.ndarray
    highpass: np.ndarray = field(repr=False)

    @classmethod
    def from_lowpass(cls, name: str, taps) -> "WaveletFilter":
        """Build the bank from lowpass taps via the QMF relation."""
        h = np.asarray(taps, dtype=np.float64)
        if h.ndim != 1 or h.size < 2 or h.size % 2 != 0:
            raise ConfigurationError(
                f"lowpass filter must be 1-D with even length >= 2, got shape {h.shape}"
            )
        signs = np.where(np.arange(h.size) % 2 == 0, 1.0, -1.0)
        g = signs * h[::-1]
        return cls(name=name, lowpass=h, highpass=g)

    @property
    def length(self) -> int:
        """Number of taps in each filter."""
        return int(self.lowpass.size)

    @property
    def vanishing_moments(self) -> int:
        """Number of vanishing moments (length / 2 for Daubechies family)."""
        return self.length // 2

    def check_orthonormality(self, atol: float = 1e-10) -> None:
        """Raise :class:`ConfigurationError` unless the bank is orthonormal.

        Checks unit energy, even-shift self-orthogonality and cross-channel
        orthogonality — the conditions under which the circular DWT matrix
        :func:`repro.wavelets.matrix.dwt_matrix` is orthogonal.
        """
        h, g = self.lowpass, self.highpass
        if abs(float(h @ h) - 1.0) > atol or abs(float(g @ g) - 1.0) > atol:
            raise ConfigurationError(f"filter {self.name!r} taps are not unit-energy")
        for shift in range(2, self.length, 2):
            if abs(float(h[shift:] @ h[: self.length - shift])) > atol:
                raise ConfigurationError(
                    f"filter {self.name!r} lowpass is not shift-orthogonal"
                )
            if abs(float(g[shift:] @ g[: self.length - shift])) > atol:
                raise ConfigurationError(
                    f"filter {self.name!r} highpass is not shift-orthogonal"
                )
        if abs(float(h @ g)) > atol:
            raise ConfigurationError(
                f"filter {self.name!r} channels are not orthogonal"
            )


_REGISTRY: dict[str, WaveletFilter] = {}


def _register(name: str, taps) -> None:
    _REGISTRY[name] = WaveletFilter.from_lowpass(name, taps)


_register("haar", _haar_taps())
_register("db1", _haar_taps())  # Db1 is the Haar basis under another name.
_register("db2", _db2_taps())
_register("db4", _DB4_TAPS)
_register("db6", _DB6_TAPS)
_register("db8", _DB8_TAPS)

#: The three bases evaluated in the paper (Section IV.B / Fig. 5).
PAPER_BASES = ("haar", "db2", "db4")


def available_bases() -> tuple[str, ...]:
    """Names of all registered wavelet bases."""
    return tuple(sorted(_REGISTRY))


def get_filter(name: str) -> WaveletFilter:
    """Look up a registered wavelet basis by name (case-insensitive)."""
    key = str(name).lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown wavelet basis {name!r}; available: {', '.join(available_bases())}"
        )
    return _REGISTRY[key]
