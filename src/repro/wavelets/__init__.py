"""Wavelet substrate: filter banks, periodic DWT, packet trees, matrices.

This package implements everything the paper's Section IV needs:

* orthonormal filter banks (Haar, Db2, Db4 + extensions),
* the periodic single-/multi-level DWT and its inverse (paper eq. 4),
* the full binary wavelet-packet tree (first stage of the DWT-based FFT),
* dense matrix forms used to verify the operator identities (eq. 5/6),
* filter frequency responses — the modified twiddle factors (Fig. 6).
"""

from .dwt import (
    DecompositionResult,
    dwt_level,
    dwt_level_batch,
    idwt_level,
    wavedec,
    waverec,
)
from .filters import PAPER_BASES, WaveletFilter, available_bases, get_filter
from .freq import (
    filter_response,
    twiddle_magnitude_profile,
    twiddle_pair,
    twiddle_quadrants,
)
from .matrix import (
    butterfly_block_matrix,
    dft_matrix,
    dwt_matrix,
    even_odd_permutation_matrix,
    packet_matrix,
)
from .packet import PacketTable, packet_level, wavelet_packet

__all__ = [
    "DecompositionResult",
    "PacketTable",
    "PAPER_BASES",
    "WaveletFilter",
    "available_bases",
    "butterfly_block_matrix",
    "dft_matrix",
    "dwt_level",
    "dwt_level_batch",
    "dwt_matrix",
    "even_odd_permutation_matrix",
    "filter_response",
    "get_filter",
    "idwt_level",
    "packet_level",
    "packet_matrix",
    "twiddle_magnitude_profile",
    "twiddle_pair",
    "twiddle_quadrants",
    "wavedec",
    "wavelet_packet",
    "waverec",
]
