"""Circular (periodic) discrete wavelet transform.

The paper expresses the first stage of its modified FFT as a DWT over the
length-N input window (eq. 4): the signal passes a lowpass/highpass pair
and is downsampled by two, giving the *approximation* (high-energy) and
*detail* (low-energy) half-bands.  Periodic boundary handling keeps the
transform an exactly orthogonal N x N linear map, which the wavelet-domain
FFT factorization requires.

All functions accept real or complex input; complex input is transformed
channel-wise (the filters are real), which is what the packed Fast-Lomb
FFT needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TransformError
from .filters import WaveletFilter, get_filter

__all__ = [
    "dwt_level",
    "dwt_level_batch",
    "idwt_level",
    "wavedec",
    "waverec",
    "DecompositionResult",
]


def _resolve(basis) -> WaveletFilter:
    if isinstance(basis, WaveletFilter):
        return basis
    return get_filter(basis)


def _filter_downsample(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Circular correlation with *taps* evaluated at even shifts.

    Computes ``out[n] = sum_j taps[j] * x[(2n + j) mod M]`` for
    ``n = 0 .. M/2 - 1`` without materialising an M x M matrix.
    """
    m = x.size
    acc = np.zeros(m // 2, dtype=np.result_type(x.dtype, np.float64))
    for j, tap in enumerate(taps):
        acc = acc + tap * np.take(x, (2 * np.arange(m // 2) + j) % m)
    return acc


def _filter_downsample_batch(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Row-wise :func:`_filter_downsample` over a ``(rows, m)`` batch.

    The tap loop and per-row accumulation order match the 1-D routine
    exactly, so batched rows are bit-identical to sequential calls.
    """
    m = x.shape[-1]
    base = 2 * np.arange(m // 2)
    acc = np.zeros(
        x.shape[:-1] + (m // 2,), dtype=np.result_type(x.dtype, np.float64)
    )
    for j, tap in enumerate(taps):
        acc = acc + tap * x[..., (base + j) % m]
    return acc


def dwt_level_batch(x, basis="haar") -> tuple[np.ndarray, np.ndarray]:
    """One periodic DWT level applied row-wise to a ``(rows, m)`` batch.

    Batched counterpart of :func:`dwt_level`, used by the batched
    wavelet-FFT execution path; returns ``(approx, detail)`` arrays of
    shape ``(rows, m // 2)``.
    """
    bank = _resolve(basis)
    arr = np.asarray(x)
    if arr.ndim != 2:
        raise TransformError(
            f"dwt_level_batch expects a 2-D batch, got shape {arr.shape}"
        )
    if arr.shape[1] % 2 != 0 or arr.shape[1] < 2:
        raise TransformError(
            f"dwt_level_batch expects even row length >= 2, got {arr.shape[1]}"
        )
    approx = _filter_downsample_batch(arr, bank.lowpass)
    detail = _filter_downsample_batch(arr, bank.highpass)
    return approx, detail


def dwt_level(x, basis="haar") -> tuple[np.ndarray, np.ndarray]:
    """One level of periodic DWT: return ``(approx, detail)`` half-bands.

    Parameters
    ----------
    x:
        Input vector of even length (real or complex).
    basis:
        Wavelet basis name or a :class:`WaveletFilter`.

    Returns
    -------
    tuple of arrays
        Lowpass (approximation) and highpass (detail) outputs, each of
        length ``len(x) // 2``.
    """
    bank = _resolve(basis)
    arr = np.asarray(x)
    if arr.ndim != 1:
        raise TransformError(f"dwt_level expects a 1-D signal, got shape {arr.shape}")
    if arr.size % 2 != 0 or arr.size < 2:
        raise TransformError(
            f"dwt_level expects even length >= 2, got {arr.size}"
        )
    approx = _filter_downsample(arr, bank.lowpass)
    detail = _filter_downsample(arr, bank.highpass)
    return approx, detail


def idwt_level(approx, detail, basis="haar") -> np.ndarray:
    """Invert one level of periodic DWT (exact for orthonormal banks)."""
    bank = _resolve(basis)
    lo = np.asarray(approx)
    hi = np.asarray(detail)
    if lo.shape != hi.shape or lo.ndim != 1:
        raise TransformError(
            f"approx/detail must be 1-D with equal shapes, got {lo.shape} and {hi.shape}"
        )
    half = lo.size
    m = 2 * half
    out = np.zeros(m, dtype=np.result_type(lo.dtype, hi.dtype, np.float64))
    positions = (2 * np.arange(half)[:, None] + np.arange(bank.length)[None, :]) % m
    np.add.at(out, positions, lo[:, None] * bank.lowpass[None, :])
    np.add.at(out, positions, hi[:, None] * bank.highpass[None, :])
    return out


@dataclass(frozen=True)
class DecompositionResult:
    """Multi-level (Mallat) DWT decomposition.

    Attributes
    ----------
    approx:
        Final-level approximation band.
    details:
        Detail bands ordered from the *deepest* level to level 1, matching
        the conventional ``[cA_n, cD_n, ..., cD_1]`` layout.
    basis:
        Name of the wavelet basis used.
    """

    approx: np.ndarray
    details: tuple[np.ndarray, ...]
    basis: str

    @property
    def levels(self) -> int:
        """Number of decomposition levels."""
        return len(self.details)

    def coefficient_vector(self) -> np.ndarray:
        """Concatenate all bands into a single length-N vector."""
        return np.concatenate([self.approx, *self.details])

    def energy_by_band(self) -> dict[str, float]:
        """Signal energy (sum of squared magnitudes) per band.

        This is the quantity the paper inspects to classify bands into
        significant / less-significant (Fig. 3): detail-band energies of
        extirpolated RR windows are tiny next to the approximation band.
        """
        energies = {f"A{self.levels}": float(np.sum(np.abs(self.approx) ** 2))}
        for i, band in enumerate(self.details):
            energies[f"D{self.levels - i}"] = float(np.sum(np.abs(band) ** 2))
        return energies


def wavedec(x, basis="haar", levels: int = 1) -> DecompositionResult:
    """Mallat-style multi-level periodic DWT (lowpass chain only)."""
    bank = _resolve(basis)
    arr = np.asarray(x)
    if levels < 1:
        raise TransformError(f"levels must be >= 1, got {levels}")
    if arr.size % (1 << levels) != 0:
        raise TransformError(
            f"signal length {arr.size} not divisible by 2**levels = {1 << levels}"
        )
    details: list[np.ndarray] = []
    current = arr
    for _ in range(levels):
        current, detail = dwt_level(current, bank)
        details.append(detail)
    return DecompositionResult(
        approx=current, details=tuple(reversed(details)), basis=bank.name
    )


def waverec(decomposition: DecompositionResult) -> np.ndarray:
    """Reconstruct the signal from a :func:`wavedec` result."""
    bank = _resolve(decomposition.basis)
    current = decomposition.approx
    for detail in decomposition.details:
        if detail.size != current.size:
            raise TransformError(
                "inconsistent decomposition: detail band of length "
                f"{detail.size} cannot follow approximation of length {current.size}"
            )
        current = idwt_level(current, detail, bank)
    return current
