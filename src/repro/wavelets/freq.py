"""Frequency responses of wavelet filters — the modified twiddle factors.

In the DWT-based FFT the butterflies combine half-length sub-DFTs with
factors that are the DFT of the wavelet filter taps (paper Section IV.B):

    X[k] = H_L(k; M) * L[k mod M/2] + H_H(k; M) * H[k mod M/2]

Unlike conventional FFT twiddles these factors are **not** unit magnitude:
for Haar, ``|H_L(k; M)| = sqrt(2)*|cos(pi k / M)|`` decays to zero across
the first half-band while ``|H_H|`` grows — exactly the structure the
paper exploits for significance-driven pruning (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from .._validation import require_power_of_two
from .filters import WaveletFilter, get_filter

__all__ = [
    "filter_response",
    "twiddle_pair",
    "twiddle_quadrants",
    "twiddle_magnitude_profile",
]


def _resolve(basis) -> WaveletFilter:
    if isinstance(basis, WaveletFilter):
        return basis
    return get_filter(basis)


def filter_response(taps: np.ndarray, m: int) -> np.ndarray:
    """Length-*m* DFT of real filter *taps*: ``sum_j taps[j] e^{-2i pi jk/m}``.

    The taps wrap circularly when the filter is longer than *m*, matching
    the periodic DWT convention, so the identity with the butterfly stage
    holds at every packet level.
    """
    m = require_power_of_two(m, "m")
    k = np.arange(m)
    response = np.zeros(m, dtype=np.complex128)
    for j, tap in enumerate(np.asarray(taps, dtype=np.float64)):
        response += tap * np.exp(-2j * np.pi * (j % m) * k / m)
    return response


def twiddle_pair(m: int, basis="haar") -> tuple[np.ndarray, np.ndarray]:
    """Return ``(H_L, H_H)`` — length-*m* responses of both channels."""
    bank = _resolve(basis)
    return filter_response(bank.lowpass, m), filter_response(bank.highpass, m)


def twiddle_quadrants(
    n: int, basis="haar"
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The diagonals of the A, B, C, D sub-matrices of paper eq. 6.

    ``A = H_L[:N/2]``, ``B = H_H[:N/2]``, ``C = H_L[N/2:]``,
    ``D = H_H[N/2:]``.  The paper observes that ``|A|`` decreases with the
    index while ``|C|`` increases, so both matrices end (resp. start) with
    near-zero factors — the candidates for stage-2 pruning.
    """
    hl, hh = twiddle_pair(n, basis)
    half = require_power_of_two(n, "n") // 2
    return hl[:half], hh[:half], hl[half:], hh[half:]


def twiddle_magnitude_profile(n: int, basis="haar") -> dict[str, np.ndarray]:
    """Magnitudes of the A and C diagonals, as plotted in paper Fig. 6."""
    a, _b, c, _d = twiddle_quadrants(n, basis)
    return {"A": np.abs(a), "C": np.abs(c)}
