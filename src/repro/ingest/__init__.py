"""Signal ingestion: pluggable sources from sensor to ``hub.feed``.

The paper's pipeline starts at the sensor — raw ECG on a body node —
while the execution layers (:class:`~repro.engine.StreamingSession`,
:class:`~repro.engine.StreamHub`, fleet, gateway) consume cleaned RR
events.  This package is the boundary between the two: a
:class:`SignalSource` emits ``(subject, times, rr, corrected)`` events,
and three implementations cover the deployment shapes —

* :class:`TachogramSource` — a pre-cleaned RR tachogram (the path every
  earlier layer assumed);
* :class:`BeatTimesSource` — detected beat instants (e.g. an external
  delineator), converted to RR events with optional incremental
  artifact preprocessing;
* :class:`ECGSource` — raw ECG frames through the chunking-invariant
  :class:`~repro.ecg.StreamingQrsDetector` and the incremental
  :class:`~repro.hrv.StreamingPreprocessor`.

:func:`ecg_record_to_rr` is the batch reference: the same detection and
cleaning run whole-record, producing the :class:`~repro.hrv.RRSeries`
(with corrected-beat mask) that a frame-by-frame replay through any
transport must finalize bit-identical to.
"""

from .sources import (
    BeatTimesSource,
    ECGSource,
    RREvent,
    SignalSource,
    TachogramSource,
    ecg_frames,
    ecg_record_to_rr,
)

__all__ = [
    "BeatTimesSource",
    "ECGSource",
    "RREvent",
    "SignalSource",
    "TachogramSource",
    "ecg_frames",
    "ecg_record_to_rr",
]
