"""Signal sources: ECG / beat-time / tachogram streams as RR events.

Every source yields :class:`RREvent` tuples — ``(subject, times,
values, corrected)`` — the exact shape :meth:`StreamHub.feed` and
:func:`StreamHub.serve` ingest, so a source plugs into any execution
layer with a plain loop::

    for subject, times, values, corrected in source:
        hub.feed(subject, times, values, corrected)

The chain is incremental end to end but *provably equal* to the batch
path: the streaming QRS detector is chunking-invariant by construction
(:class:`~repro.ecg.StreamingQrsDetector`), the RR conversion mirrors
:meth:`RRSeries.from_beat_times` element by element, and the streaming
preprocessor replays :func:`~repro.hrv.preprocessing.filter_artifacts`
median-for-median — so the concatenated events of any replay equal
:func:`ecg_record_to_rr` of the whole record, bit for bit.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

import numpy as np

from ..ecg.qrs import StreamingQrsDetector
from ..errors import SignalError, ValidationError
from ..hrv.preprocessing import StreamingPreprocessor, filter_artifacts
from ..hrv.rr import RRSeries

__all__ = [
    "BeatTimesSource",
    "ECGSource",
    "RREvent",
    "SignalSource",
    "TachogramSource",
    "ecg_frames",
    "ecg_record_to_rr",
]

#: Default beats per emitted RR event (an uplink-burst-sized chunk).
DEFAULT_CHUNK_BEATS = 64


class RREvent(NamedTuple):
    """One burst of cleaned RR intervals from a source.

    Unpacks as the 4-tuple ``(subject, times, values, corrected)`` that
    :meth:`StreamHub.feed` / ``hub.serve`` accept directly;
    ``corrected`` is a boolean mask (or ``None`` when the source has no
    provenance information).
    """

    subject: str
    times: np.ndarray
    values: np.ndarray
    corrected: np.ndarray | None


class SignalSource:
    """A stream of per-subject RR events.

    Subclasses implement :meth:`events`; iteration delegates to it, so
    ``for event in source`` and ``hub.serve(source.events())`` are both
    natural spellings.
    """

    #: Subject identifier every event of this source carries.
    subject: str

    def events(self) -> Iterator[RREvent]:
        """Yield the source's :class:`RREvent` stream."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[RREvent]:
        return self.events()


def _chunk_spans(n: int, chunk: int):
    if chunk < 1:
        raise SignalError(f"chunk_beats must be >= 1, got {chunk}")
    for lo in range(0, n, chunk):
        yield lo, min(lo + chunk, n)


class TachogramSource(SignalSource):
    """Replay an existing RR tachogram in uplink-sized events.

    ``rr`` may be an :class:`RRSeries` (its ``corrected`` mask, when
    present, rides along) or a plain ``(times, values)`` pair.
    """

    def __init__(self, subject: str, rr, chunk_beats: int = DEFAULT_CHUNK_BEATS):
        self.subject = str(subject)
        if isinstance(rr, RRSeries):
            self._times = rr.times
            self._values = rr.intervals
            self._corrected = rr.corrected
        else:
            times, values = rr
            self._times = np.asarray(times, dtype=np.float64)
            self._values = np.asarray(values, dtype=np.float64)
            self._corrected = None
        self._chunk = int(chunk_beats)

    def events(self) -> Iterator[RREvent]:
        for lo, hi in _chunk_spans(self._times.size, self._chunk):
            yield RREvent(
                self.subject,
                self._times[lo:hi],
                self._values[lo:hi],
                None
                if self._corrected is None
                else self._corrected[lo:hi],
            )


class _BeatPipeline:
    """Shared tail of the beat-driven sources: beats -> cleaned RR.

    Converts beat instants to RR intervals exactly as
    :meth:`RRSeries.from_beat_times` (interval ``k`` ends at beat
    ``k+1``) and optionally routes them through the incremental
    artifact preprocessor.
    """

    def __init__(self, preprocess, window, tolerance, max_fraction):
        self._prev_beat: float | None = None
        self._preprocessor = (
            StreamingPreprocessor(
                window=window,
                tolerance=tolerance,
                max_fraction=max_fraction,
            )
            if preprocess
            else None
        )

    def push(self, beats: np.ndarray):
        """Convert newly detected beats; return ``(t, rr, corrected)``."""
        beats = np.asarray(beats, dtype=np.float64)
        if beats.size == 0:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty, np.empty(0, dtype=bool)
        if self._prev_beat is None:
            prev = beats[0]
            tail = beats[1:]
        else:
            prev = self._prev_beat
            tail = beats
        self._prev_beat = float(beats[-1])
        with_prev = np.concatenate(([prev], tail))
        steps = np.diff(with_prev)
        if np.any(steps <= 0):
            raise ValidationError(
                "beat times are not strictly increasing"
            )
        if self._preprocessor is None:
            return tail, steps, np.zeros(tail.size, dtype=bool)
        return self._preprocessor.push(tail, steps)

    def finalize(self):
        """Flush the preprocessor's lookahead tail."""
        if self._preprocessor is None:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty, np.empty(0, dtype=bool)
        return self._preprocessor.finalize()


class BeatTimesSource(SignalSource):
    """RR events from detected beat instants (external delineator).

    With ``preprocess=True`` (default) the intervals pass through the
    incremental ectopic/artifact stage; the emitted ``corrected`` masks
    mark interpolated beats.
    """

    def __init__(
        self,
        subject: str,
        beat_times,
        chunk_beats: int = DEFAULT_CHUNK_BEATS,
        preprocess: bool = True,
        window: int = 11,
        tolerance: float = 0.2,
        max_fraction: float = 0.3,
    ):
        self.subject = str(subject)
        beats = np.asarray(beat_times, dtype=np.float64)
        if beats.ndim != 1 or beats.size < 3:
            raise SignalError(
                f"need at least 3 1-D beat times, got shape {beats.shape}"
            )
        steps = np.diff(beats)
        if np.any(steps < 0):
            raise ValidationError(
                "beat times are not sorted: they must be strictly "
                "increasing instants"
            )
        if np.any(steps == 0):
            raise ValidationError(
                "beat times contain duplicates: each beat must have a "
                "unique instant"
            )
        self._beats = beats
        self._chunk = int(chunk_beats)
        self._pipeline_args = (preprocess, window, tolerance, max_fraction)

    def events(self) -> Iterator[RREvent]:
        pipeline = _BeatPipeline(*self._pipeline_args)
        for lo, hi in _chunk_spans(self._beats.size, self._chunk):
            t, rr, corrected = pipeline.push(self._beats[lo:hi])
            if t.size:
                yield RREvent(self.subject, t, rr, corrected)
        t, rr, corrected = pipeline.finalize()
        if t.size:
            yield RREvent(self.subject, t, rr, corrected)


class ECGSource(SignalSource):
    """RR events from raw ECG frames: detect beats, clean intervals.

    ``frames`` is an iterable of ``(times, ecg)`` sample chunks on a
    uniform grid (any chunking — the block-based detector makes the
    output invariant to it).  Each incoming frame yields at most one
    event carrying every RR interval that frame resolved.
    """

    def __init__(
        self,
        subject: str,
        frames: Iterable,
        sampling_rate: float = 250.0,
        detector: StreamingQrsDetector | None = None,
        preprocess: bool = True,
        window: int = 11,
        tolerance: float = 0.2,
        max_fraction: float = 0.3,
    ):
        self.subject = str(subject)
        self._frames = frames
        self._detector = (
            detector
            if detector is not None
            else StreamingQrsDetector(sampling_rate=sampling_rate)
        )
        self._pipeline_args = (preprocess, window, tolerance, max_fraction)

    def events(self) -> Iterator[RREvent]:
        pipeline = _BeatPipeline(*self._pipeline_args)
        for times, ecg in self._frames:
            beats = self._detector.push(times, ecg)
            t, rr, corrected = pipeline.push(beats)
            if t.size:
                yield RREvent(self.subject, t, rr, corrected)
        beats = self._detector.finalize()
        t1, rr1, c1 = pipeline.push(beats)
        t2, rr2, c2 = pipeline.finalize()
        t = np.concatenate([t1, t2])
        if t.size:
            yield RREvent(
                self.subject,
                t,
                np.concatenate([rr1, rr2]),
                np.concatenate([c1, c2]),
            )


def ecg_frames(times, ecg, frame_samples: int = 512):
    """Slice a whole ECG record into uniform frames (replay helper)."""
    t = np.asarray(times, dtype=np.float64)
    x = np.asarray(ecg, dtype=np.float64)
    if frame_samples < 1:
        raise SignalError(f"frame_samples must be >= 1, got {frame_samples}")
    for lo in range(0, t.size, frame_samples):
        hi = min(lo + frame_samples, t.size)
        yield t[lo:hi], x[lo:hi]


def ecg_record_to_rr(
    times,
    ecg,
    sampling_rate: float = 250.0,
    detector: StreamingQrsDetector | None = None,
    preprocess: bool = True,
    window: int = 11,
    tolerance: float = 0.2,
    max_fraction: float = 0.3,
) -> RRSeries:
    """Whole-record ECG -> cleaned RR series (the batch reference).

    Runs the streaming detector one-shot (its chunking invariance makes
    that the canonical batch detection), converts to an
    :class:`RRSeries`, and applies whole-record artifact filtering.
    The returned series carries the corrected-beat mask, so feeding it
    to :meth:`Engine.analyze` yields the per-window metrics and quality
    flags the streamed replay of the same record must reproduce
    bit-identically.
    """
    base = (
        detector
        if detector is not None
        else StreamingQrsDetector(sampling_rate=sampling_rate)
    )
    beats = base.detect_record(times, ecg)
    rr = RRSeries.from_beat_times(beats)
    if not preprocess:
        return rr
    report = filter_artifacts(
        rr, window=window, tolerance=tolerance, max_fraction=max_fraction
    )
    return report.series
