#!/usr/bin/env python3
"""One-shot verification gate: every check a PR must pass, in one run.

    python tools/run_checks.py            # full gate
    python tools/run_checks.py --fast     # skip the bench smoke tests

Runs, in order:

1. the tier-1 test suite (``pytest -x -q`` with ``src`` on the path),
2. the public-API surface check (``tools/check_public_api.py``),
3. the compiled-artifact hygiene check (``tools/check_no_pyc.py``),
4. the localhost distributed smoke (``tools/distributed_smoke.py``):
   worker daemon up, tiny cohort bit-identical over the socket
   transport, daemon down cleanly,
5. the chaos smoke (``tools/chaos_smoke.py``): injected overload sheds
   quality and recovers under the SLO controller; an injected worker
   death rejoins with backoff — both bit-identical to healthy runs,
6. the service smoke (``tools/service_smoke.py``): gateway on an
   ephemeral port, a two-subject cohort streamed through the framed
   protocol bit-identical to ``Engine.analyze``, one REST batch upload,
7. the ingestion smoke (``tools/ingest_smoke.py``): raw ECG replayed
   frame-by-frame through the streaming QRS detector and artifact
   preprocessor, bit-identical to the batch path on both PSA systems,
8. the five benchmark smoke tests (streaming, throughput, fleet,
   service, ingest) that exercise the measurement harnesses end to end.

Each step streams its own output; the gate prints a pass/fail summary
table and exits non-zero if *any* step failed (later steps still run, so
one invocation reports everything that is broken).
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: (label, argv) of every gate step, in execution order.  The bench
#: smoke tests live in the tier-1 suite too, but running them by name
#: keeps the gate loud about which harness broke.
STEPS: list[tuple[str, list[str]]] = [
    (
        "tier-1 tests",
        [sys.executable, "-m", "pytest", "-x", "-q", "tests"],
    ),
    (
        "public API surface",
        [sys.executable, "tools/check_public_api.py"],
    ),
    (
        "no compiled artifacts",
        [sys.executable, "tools/check_no_pyc.py"],
    ),
    (
        "distributed smoke (localhost daemon)",
        [sys.executable, "tools/distributed_smoke.py"],
    ),
    (
        "chaos smoke (fault injection)",
        [sys.executable, "tools/chaos_smoke.py"],
    ),
    (
        "service smoke (gateway + REST)",
        [sys.executable, "tools/service_smoke.py"],
    ),
    (
        "ingest smoke (ECG replay bit-identity)",
        [sys.executable, "tools/ingest_smoke.py"],
    ),
    (
        "bench smoke: streaming",
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "tests/test_bench_streaming_smoke.py",
        ],
    ),
    (
        "bench smoke: throughput",
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "tests/test_bench_throughput_smoke.py",
        ],
    ),
    (
        "bench smoke: fleet",
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "tests/test_bench_fleet_smoke.py",
        ],
    ),
    (
        "bench smoke: service",
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "tests/test_bench_service_smoke.py",
        ],
    ),
    (
        "bench smoke: ingest",
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "tests/test_bench_ingest_smoke.py",
        ],
    ),
]

#: Steps --fast drops (the smoke tests re-run benchmark workloads).
FAST_SKIP_PREFIX = "bench smoke"


def run_step(label: str, argv: list[str]) -> tuple[bool, float]:
    """Run one gate step in the repo root with ``src`` importable."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    print(f"\n=== {label}: {' '.join(argv)}", flush=True)
    start = time.perf_counter()
    proc = subprocess.run(argv, cwd=REPO_ROOT, env=env)
    elapsed = time.perf_counter() - start
    return proc.returncode == 0, elapsed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast",
        action="store_true",
        help="skip the benchmark smoke tests",
    )
    args = parser.parse_args(argv)
    steps = [
        (label, cmd)
        for label, cmd in STEPS
        if not (args.fast and label.startswith(FAST_SKIP_PREFIX))
    ]
    outcomes: list[tuple[str, bool, float]] = []
    for label, cmd in steps:
        ok, elapsed = run_step(label, cmd)
        outcomes.append((label, ok, elapsed))
    width = max(len(label) for label, _, _ in outcomes)
    print("\n" + "=" * (width + 18))
    failed = 0
    for label, ok, elapsed in outcomes:
        verdict = "ok" if ok else "FAILED"
        failed += not ok
        print(f"{label:<{width}}  {verdict:<7} {elapsed:>7.1f}s")
    print("=" * (width + 18))
    if failed:
        print(f"{failed}/{len(outcomes)} checks failed")
        return 1
    print(f"all {len(outcomes)} checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
