#!/usr/bin/env python3
"""Chaos smoke: the streaming engine under injected faults, end to end.

Drives two deterministic fault scenarios from
:mod:`repro.testing.faults` and exits non-zero if the engine's
robustness story breaks:

1. **Overload → shed → recover** (in-process): a hub with an
   :class:`~repro.engine.SLOSpec` is fed a steady ward of subjects
   while a :class:`FlushLatencyFault` models an overload burst.  The
   quality controller must step subjects down the degradation ladder
   until the observed flush p95 is back under target, hold a pinned
   subject at full quality throughout, keep every degraded window
   bit-identical to a homogeneous run at that level, and walk everyone
   back to full quality once the burst recedes.

2. **Worker death → rejoin** (socket): a live
   :class:`~repro.fleet.remote.WorkerDaemon` serves a hub's flushes;
   a :class:`WorkerDeathTrigger` kills the connection mid-flush.  The
   scheduler must requeue the lost task, rejoin the daemon with
   backoff, finish the flush, count the reconnect in
   ``transport_stats()`` — and the result must still be bit-identical
   to the in-process run.

Run from the repository root:

    python tools/chaos_smoke.py
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.engine import Engine, EngineConfig, SLOSpec  # noqa: E402
from repro.fleet.remote import WorkerDaemon  # noqa: E402
from repro.testing import (  # noqa: E402
    FaultClock,
    FlushLatencyFault,
    WorkerDeathTrigger,
)

SUBJECTS = ("ward-1", "ward-2", "ward-3", "icu-pinned")
TARGET_MS = 30.0


def _feed_round(sessions, cursors, rng, beats=300):
    for sid, session in sessions.items():
        rr = 0.8 + 0.05 * rng.standard_normal(beats)
        times = cursors[sid] + np.cumsum(rr)
        session.feed(times, rr)
        cursors[sid] = float(times[-1])


def scenario_overload_shed_recover() -> list[str]:
    """Overload burst: controller sheds, pinned holds, calm recovers."""
    failures: list[str] = []
    config = EngineConfig(
        system="quality-scalable",
        slo=SLOSpec(target_p95_ms=TARGET_MS, window=4,
                    step_down_after=2, recover_after=2),
    )
    with Engine(config) as engine:
        hub = engine.open_hub()
        clock = FaultClock().install(hub)
        # 20 flushes of 2.5x overload, then near-zero load forever.
        # Calibration: 16 full windows/flush cost 16*2*2.5 = 80 ms
        # (breach); with the three movable subjects shed to the bottom,
        # the pinned subject's 4 full windows dominate at ~20 ms —
        # under target, but only *because* shedding happened.
        fault = FlushLatencyFault(
            per_window_ms=2.0, discount=0.4, load=(2.5,) * 20 + (0.05,)
        ).install(hub)
        sessions = {sid: hub.open(sid) for sid in SUBJECTS}
        hub.set_quality("icu-pinned", 0, pin=True)
        cursors = {sid: 0.0 for sid in SUBJECTS}
        rng = np.random.default_rng(2014)
        peak_p95 = 0.0
        shed_p95 = None  # best p95 while overloaded, after shedding began
        for round_no in range(34):
            _feed_round(sessions, cursors, rng)
            hub.flush()
            stats = hub.controller_stats()
            peak_p95 = max(peak_p95, stats["p95_ms"])
            if round_no < 20 and stats["steps_down"] > 0:
                if shed_p95 is None or stats["p95_ms"] < shed_p95:
                    shed_p95 = stats["p95_ms"]
            if stats["levels"]["icu-pinned"] != 0:
                failures.append(
                    f"pinned subject moved to level "
                    f"{stats['levels']['icu-pinned']} at round {round_no}"
                )
        stats = hub.controller_stats()
        if peak_p95 <= TARGET_MS:
            failures.append(
                f"overload never breached the target "
                f"(peak p95 {peak_p95:.1f} ms <= {TARGET_MS} ms)"
            )
        if stats["steps_down"] == 0:
            failures.append("controller never stepped anyone down")
        if shed_p95 is None or shed_p95 > TARGET_MS:
            failures.append(
                f"shedding did not pull p95 under target during overload "
                f"(p95 {shed_p95 and f'{shed_p95:.1f}'} ms)"
            )
        if stats["steps_up"] == 0:
            failures.append("controller never recovered anyone")
        bad = {s: lv for s, lv in stats["levels"].items() if lv != 0}
        if bad:
            failures.append(f"subjects still degraded after calm: {bad}")
        clock.uninstall()
        shed = sum(
            count
            for level, count in stats["windows_by_level"].items()
            if level != 0
        )
        total = sum(stats["windows_by_level"].values())
        print(
            f"  overload: peak p95 {peak_p95:.1f} ms -> "
            f"{shed_p95:.1f} ms after shedding "
            f"(target {TARGET_MS} ms); "
            f"{stats['steps_down']} step-downs, {stats['steps_up']} "
            f"step-ups, {shed}/{total} windows shed; "
            f"{fault.calls} faulted flushes"
        )
        # Bit-identity of the degraded windows: replay ward-1's samples
        # through a hub *pinned* at each level ward-1 visited and
        # compare spectra.
        visited = sorted(
            {e.quality for e in sessions["ward-1"].emissions}
        )
        reference_rng = np.random.default_rng(2014)
        emissions = sessions["ward-1"].emissions
        for level in visited:
            pinned_engine = Engine(config)
            pinned_hub = pinned_engine.open_hub()
            pinned_session = pinned_hub.open("ward-1")
            pinned_hub.set_quality("ward-1", level)
            cursor = {"ward-1": 0.0}
            replay_rng = np.random.default_rng(2014)
            for _ in range(34):
                for sid in SUBJECTS:  # consume siblings' draws in order
                    rr = 0.8 + 0.05 * replay_rng.standard_normal(300)
                    if sid == "ward-1":
                        times = cursor[sid] + np.cumsum(rr)
                        pinned_session.feed(times, rr)
                        cursor[sid] = float(times[-1])
                pinned_hub.flush()
            by_start = {
                e.start: e for e in pinned_session.emissions
            }
            checked = 0
            for emission in emissions:
                if emission.quality != level:
                    continue
                twin = by_start.get(emission.start)
                if twin is None:
                    failures.append(
                        f"level {level}: window @{emission.start:.2f}s "
                        "missing from pinned replay"
                    )
                    continue
                if not np.array_equal(
                    emission.spectrum.power, twin.spectrum.power
                ):
                    failures.append(
                        f"level {level}: window @{emission.start:.2f}s "
                        "spectrum differs from homogeneous run"
                    )
                checked += 1
            pinned_engine.close()
            print(
                f"  bit-identity: {checked} level-{level} windows match "
                "the homogeneous run"
            )
        del reference_rng
    return failures


def scenario_worker_death_rejoin() -> list[str]:
    """Mid-flush worker death: requeue, rejoin with backoff, identical."""
    failures: list[str] = []
    rng = np.random.default_rng(7)
    rr = 0.8 + 0.05 * rng.standard_normal(6000)
    times = np.cumsum(rr)
    config = EngineConfig(system="quality-scalable", jobs=1)
    with Engine(config) as local:
        session = local.open_stream()
        reference = session.feed(times, rr)
    with WorkerDaemon() as daemon:
        daemon.start()
        remote_config = config.replace(workers=(daemon.address,))
        with Engine(remote_config) as engine:
            hub = engine.open_hub()
            feed = hub.open("chaos")
            # Warm-up flush (large enough to slice remotely)
            # establishes the connection so the trigger has a live
            # worker to arm.
            warm = 0.8 + 0.05 * np.random.default_rng(8).standard_normal(
                3000
            )
            feed.feed(times[-1] + np.cumsum(warm), warm)
            hub.flush()
            worker = engine._ensure_fleet()._remote_registry[daemon.address]
            trigger = WorkerDeathTrigger(worker, after_tasks=0)
            second = 0.8 + 0.05 * np.random.default_rng(9).standard_normal(
                6000
            )
            t2 = float(times[-1]) + 3600.0 + np.cumsum(second)
            feed.feed(t2, second)
            hub.flush()
            if trigger.deaths != 1:
                failures.append(
                    f"death trigger fired {trigger.deaths} times, "
                    "expected exactly 1"
                )
            stats = engine._ensure_fleet().transport_stats()
            counters = stats.get(daemon.address, {})
            if counters.get("reconnects", 0) < 1:
                failures.append(
                    f"no reconnect recorded after injected death: {counters}"
                )
            trigger.cancel()
            print(
                f"  rejoin: {trigger.deaths} injected death, "
                f"{counters.get('reconnects')} reconnect(s), "
                f"{trigger.tasks_passed} tasks served by {daemon.address}"
            )
        # Bit-identity after a mid-run death: fresh single engine run of
        # the same samples over the (still healthy) daemon.
        with Engine(remote_config) as engine:
            session = engine.open_stream()
            survived = session.feed(times, rr)
        if len(survived) != len(reference):
            failures.append(
                f"post-death run emitted {len(survived)} windows, "
                f"in-process emitted {len(reference)}"
            )
        else:
            for ref, got in zip(reference, survived):
                if not np.array_equal(
                    ref.spectrum.power, got.spectrum.power
                ):
                    failures.append(
                        f"window @{ref.start:.2f}s differs after rejoin"
                    )
                    break
            else:
                print(
                    f"  bit-identity: {len(survived)} windows identical "
                    "over the rejoined socket transport"
                )
    return failures


def main() -> int:
    failures: list[str] = []
    print("chaos scenario 1: overload -> shed -> recover")
    failures += scenario_overload_shed_recover()
    print("chaos scenario 2: worker death -> rejoin")
    failures += scenario_worker_death_rejoin()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("chaos smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
