#!/usr/bin/env python3
"""Fail when compiled python artifacts are tracked by git.

``__pycache__`` directories and ``*.pyc`` / ``*.pyo`` files are build
products of whatever interpreter last imported the package; committing
them bloats the history and churns every diff.  This script is the
standalone form of the tier-1 guard in ``tests/test_repo_hygiene.py``:

    python tools/check_no_pyc.py

Exits 0 when the tree is clean, 1 with the offending paths otherwise.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Path fragments / suffixes that mark a tracked file as a compiled
#: artifact.  Shared with the pytest guard.
ARTIFACT_MARKERS = ("__pycache__",)
ARTIFACT_SUFFIXES = (".pyc", ".pyo")


def tracked_artifacts(repo_root: pathlib.Path = REPO_ROOT) -> list[str]:
    """Git-tracked paths that are compiled python artifacts."""
    listing = subprocess.run(
        ["git", "ls-files", "-z"],
        cwd=repo_root,
        capture_output=True,
        check=True,
        text=True,
    )
    offenders = []
    for path in listing.stdout.split("\0"):
        if not path:
            continue
        parts = path.split("/")
        if any(marker in parts for marker in ARTIFACT_MARKERS) or path.endswith(
            ARTIFACT_SUFFIXES
        ):
            offenders.append(path)
    return offenders


def main() -> int:
    offenders = tracked_artifacts()
    if not offenders:
        print("clean: no compiled artifacts tracked by git")
        return 0
    print(
        f"{len(offenders)} compiled artifact(s) tracked by git "
        "(git rm -r --cached them and keep .gitignore current):"
    )
    for path in offenders:
        print(f"  {path}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
