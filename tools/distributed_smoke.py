#!/usr/bin/env python3
"""Localhost distributed smoke: daemon up, cohort bit-identical, daemon down.

Starts one worker daemon (``python -m repro worker``) on an ephemeral
port, runs a tiny two-recording cohort through it via
``EngineConfig(workers=[address])``, and checks the spectrograms and
operation counts are bit-identical to the in-process engine.  Exits
non-zero on any mismatch or if the daemon does not shut down cleanly.

Run from the repository root:

    python tools/distributed_smoke.py
"""

from __future__ import annotations

import os
import pathlib
import re
import signal
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.ecg.rr_synthesis import TachogramSpec, generate_tachogram  # noqa: E402
from repro.engine import Engine, EngineConfig  # noqa: E402


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        banner = daemon.stdout.readline()
        match = re.search(r"listening on (\S+)", banner)
        if match is None:
            print(f"FAIL: no daemon address banner: {banner!r}")
            return 1
        address = match.group(1)
        print(f"daemon up at {address}")

        recordings = [
            generate_tachogram(TachogramSpec(seed=2014 + k), 900.0)
            for k in range(2)
        ]
        config = EngineConfig.for_mode("set3")
        local = Engine(config)
        remote = Engine(config.replace(workers=(address,)))
        try:
            reference = [
                local.analyze(rr, count_ops=True) for rr in recordings
            ]
            distributed = remote.analyze_cohort(
                recordings, count_ops=True
            )
        finally:
            local.close()
            remote.close()
        for k, (ref, dist) in enumerate(zip(reference, distributed)):
            if not np.array_equal(
                ref.welch.spectrogram, dist.welch.spectrogram
            ):
                print(f"FAIL: recording {k} spectrogram differs")
                return 1
            if ref.counts != dist.counts:
                print(f"FAIL: recording {k} op counts differ")
                return 1
        print(f"{len(recordings)} recordings bit-identical over {address}")
    finally:
        daemon.send_signal(signal.SIGINT)
        try:
            code = daemon.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            daemon.kill()
            daemon.wait()
            print("FAIL: daemon did not exit after SIGINT")
            return 1
        finally:
            daemon.stdout.close()
    if code != 0:
        print(f"FAIL: daemon exited with status {code}")
        return 1
    print("daemon shut down cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
