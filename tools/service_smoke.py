#!/usr/bin/env python3
"""Service-layer smoke: gateway up, cohort bit-identical over the wire.

Starts a :class:`GatewayServer` on an ephemeral port (in-process, on a
background thread), streams a two-subject cohort through the framed
protocol via :class:`ServiceClient` with interleaved feeds, finalizes,
and checks every spectrum — spectrogram rows, window times, averaged
spectrum and operation counts — is **bit-identical** to in-process
``Engine.analyze`` of the same recordings.  Also exercises one REST
batch upload (``POST /v1/analyze``) and the stats endpoint, then drains
the gateway cleanly.

Run from the repository root:

    python tools/service_smoke.py
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.ecg.rr_synthesis import TachogramSpec, generate_tachogram  # noqa: E402
from repro.engine import Engine, EngineConfig  # noqa: E402
from repro.service import (  # noqa: E402
    GatewayThread,
    ServiceClient,
    ServiceConfig,
    TenantSpec,
    rest_analyze,
    rest_stats,
)
from repro.service.wire import result_to_dict  # noqa: E402


def main() -> int:
    engine_config = EngineConfig.for_mode("set3")
    recordings = {
        f"subject-{k}": generate_tachogram(TachogramSpec(seed=2014 + k), 900.0)
        for k in range(2)
    }

    with Engine(engine_config) as engine:
        reference = {
            subject: result_to_dict(engine.analyze(rr, count_ops=True))
            for subject, rr in recordings.items()
        }

    config = ServiceConfig(
        listen="127.0.0.1:0",
        tenants=(TenantSpec("smoke", "smoke-token", engine=engine_config),),
        count_ops=True,
    )
    with GatewayThread(config) as gateway:
        print(f"gateway up at {gateway.address}")
        clients = {
            subject: ServiceClient(
                gateway.address, tenant="smoke", token="smoke-token"
            )
            for subject in recordings
        }
        try:
            for subject, client in clients.items():
                client.open(subject)
            # Interleaved feeds: alternate subjects chunk by chunk, the
            # arrival pattern a ward of independent wearables produces.
            chunk = 64
            longest = max(rr.times.size for rr in recordings.values())
            for lo in range(0, longest, chunk):
                for subject, rr in recordings.items():
                    if lo < rr.times.size:
                        clients[subject].feed(
                            rr.times[lo : lo + chunk],
                            rr.intervals[lo : lo + chunk],
                        )
            results = {
                subject: client.finalize()
                for subject, client in clients.items()
            }
        finally:
            for client in clients.values():
                client.close()

        for subject, result in results.items():
            wire = {
                key: value
                for key, value in result.items()
                if key not in ("op", "subject")
            }
            if wire != reference[subject]:
                drifted = [
                    key for key in reference[subject]
                    if wire.get(key) != reference[subject][key]
                ]
                print(f"FAIL: {subject} differs from Engine.analyze: "
                      f"{drifted}")
                return 1
            if not clients[subject].windows:
                print(f"FAIL: {subject} streamed no window frames")
                return 1
        wire_bytes = sum(
            c.bytes_sent + c.bytes_received for c in clients.values()
        )
        print(
            f"{len(recordings)} subjects bit-identical over the framed "
            f"protocol ({wire_bytes / 1024.0:.0f} KiB on the wire, "
            f"{sum(len(c.windows) for c in clients.values())} windows "
            f"pushed)"
        )

        # One REST batch upload, same exactness bar.
        subject, rr = next(iter(recordings.items()))
        rest_result = rest_analyze(
            gateway.address, "smoke-token", rr.times, rr.intervals,
            count_ops=True,
        )
        if rest_result != reference[subject]:
            print("FAIL: REST /v1/analyze differs from Engine.analyze")
            return 1
        print("REST batch upload bit-identical")

        stats = rest_stats(gateway.address, "smoke-token")
        frames = stats["service"]["wire"]["frames_in"]
        if frames <= 0:
            print("FAIL: stats endpoint reports no ingested frames")
            return 1
        print(f"stats endpoint ok ({frames} frames ingested)")
    print("gateway drained cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
