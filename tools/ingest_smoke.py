#!/usr/bin/env python3
"""Ingestion smoke: raw ECG replayed frame-by-frame, bit-identical.

Renders a two-patient ward of raw ECG records, streams each through
:class:`repro.ingest.ECGSource` (incremental QRS detection + streaming
artifact preprocessing) into a shared :class:`~repro.engine.StreamHub`,
and checks every finalized result — spectrogram, window times,
operation counts, per-window time-domain metrics and quality flags —
is **bit-identical** to the one-shot batch path
(:func:`repro.ingest.ecg_record_to_rr` + ``Engine.analyze``) on both
PSA systems.  One record carries a motion artifact so the corrected
mask and quality flags are exercised, not just the clean path.

Run from the repository root:

    python tools/ingest_smoke.py
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import Engine, EngineConfig, make_cohort  # noqa: E402
from repro.ecg import synthesize_ecg  # noqa: E402
from repro.ingest import ECGSource, ecg_frames, ecg_record_to_rr  # noqa: E402

SAMPLING_RATE = 250.0
FRAME_SAMPLES = 256
DURATION = 300.0


def render_ward() -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Two rendered ECG records; the second has a motion artifact."""
    ward: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for index, patient in enumerate(list(make_cohort())[:2]):
        rr = patient.rr_series(duration=DURATION)
        beats = np.concatenate([[rr.times[0] - rr.intervals[0]], rr.times])
        if index == 1:
            beats = beats.copy()
            for k in range(60, 76, 3):
                beats[k] += 0.22
        ward[patient.patient_id] = synthesize_ecg(
            beats, sampling_rate=SAMPLING_RATE, seed=index
        )
    return ward


def main() -> int:
    ward = render_ward()
    for mode in ("exact", "set3"):
        with Engine(EngineConfig.for_mode(mode)) as engine:
            hub = engine.open_hub(count_ops=True)
            corrected_total = 0
            for subject, (t, ecg) in ward.items():
                source = ECGSource(
                    subject,
                    ecg_frames(t, ecg, frame_samples=FRAME_SAMPLES),
                    sampling_rate=SAMPLING_RATE,
                )
                for event_subject, times, values, corrected in source:
                    hub.feed(event_subject, times, values, corrected)
                    corrected_total += int(np.count_nonzero(corrected))
            results = hub.finalize_all()
            if corrected_total == 0:
                print(f"FAIL: {mode}: no beats corrected in flight")
                return 1
            flagged = sum(
                1
                for result in results.values()
                for metrics in result.window_metrics
                if metrics.flags
            )
            if flagged == 0:
                print(f"FAIL: {mode}: no windows carried quality flags")
                return 1
            for subject, (t, ecg) in ward.items():
                reference = engine.analyze(
                    ecg_record_to_rr(t, ecg, sampling_rate=SAMPLING_RATE),
                    count_ops=True,
                )
                result = results[subject]
                identical = (
                    np.array_equal(
                        result.welch.spectrogram,
                        reference.welch.spectrogram,
                    )
                    and np.array_equal(
                        result.welch.window_times,
                        reference.welch.window_times,
                    )
                    and result.counts == reference.counts
                    and result.window_metrics == reference.window_metrics
                )
                if not identical:
                    print(
                        f"FAIL: {mode}: {subject} streamed result "
                        "diverged from batch"
                    )
                    return 1
            print(
                f"{mode}: {len(ward)} ECG records bit-identical streamed "
                f"vs batch ({corrected_total} beats corrected, "
                f"{flagged} windows flagged)"
            )
    print("ingestion path bit-identical on both PSA systems")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
