#!/usr/bin/env python3
"""Snapshot-check the public API surface of ``repro`` / ``repro.engine``.

The redesigned facade (PR 4) is a compatibility contract: the names each
public module exports and the parameters its public callables accept.
This tool renders that surface as deterministic text — one line per
exported name, callables with their parameter lists (names and
defaulted-ness, not default values, so the snapshot does not churn when
a default's repr changes) — and compares it against the committed
``tools/api_surface.txt``.

Run from the repository root:

    python tools/check_public_api.py            # verify (exit 1 on drift)
    python tools/check_public_api.py --update   # rewrite the snapshot

A failing check means a PR changed the public surface; if the change is
intentional, re-run with ``--update`` and commit the new snapshot so the
diff documents the API change explicitly.
"""

from __future__ import annotations

import argparse
import difflib
import importlib
import inspect
import sys
from pathlib import Path

#: Modules whose exported surface is under contract.
MODULES = (
    "repro",
    "repro.engine",
    "repro.fleet",
    "repro.ingest",
    "repro.perf",
    "repro.service",
    "repro.testing",
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SNAPSHOT_PATH = REPO_ROOT / "tools" / "api_surface.txt"


def _describe_callable(qualname: str, obj) -> str:
    """``qualname(param, defaulted=, *, kwonly=)`` for one callable."""
    try:
        signature = inspect.signature(obj)
    except (TypeError, ValueError):
        return qualname
    rendered: list[str] = []
    seen_kwonly_marker = False
    for param in signature.parameters.values():
        if param.kind is inspect.Parameter.VAR_POSITIONAL:
            rendered.append(f"*{param.name}")
            seen_kwonly_marker = True
            continue
        if param.kind is inspect.Parameter.VAR_KEYWORD:
            rendered.append(f"**{param.name}")
            continue
        if param.kind is inspect.Parameter.KEYWORD_ONLY and not seen_kwonly_marker:
            rendered.append("*")
            seen_kwonly_marker = True
        name = param.name
        if param.default is not inspect.Parameter.empty:
            name += "="
        rendered.append(name)
    return f"{qualname}({', '.join(rendered)})"


def snapshot_lines() -> list[str]:
    """The current API surface, one deterministic line per export."""
    lines: list[str] = []
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        if exported is None:
            raise SystemExit(f"{module_name} has no __all__; nothing to pin")
        lines.append(f"# {module_name}")
        for name in sorted(exported):
            obj = getattr(module, name)
            qualname = f"{module_name}.{name}"
            if callable(obj):
                lines.append(_describe_callable(qualname, obj))
            else:
                lines.append(qualname)
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite tools/api_surface.txt from the current surface",
    )
    args = parser.parse_args(argv)

    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))

    current = snapshot_lines()
    if args.update:
        SNAPSHOT_PATH.write_text("\n".join(current) + "\n", encoding="utf-8")
        print(f"wrote {SNAPSHOT_PATH.relative_to(REPO_ROOT)} "
              f"({len(current)} lines)")
        return 0

    if not SNAPSHOT_PATH.exists():
        print(f"missing {SNAPSHOT_PATH}; run with --update to create it")
        return 1
    committed = SNAPSHOT_PATH.read_text(encoding="utf-8").splitlines()
    if committed == current:
        print(f"public API surface matches ({len(current)} lines)")
        return 0
    print("public API surface drifted from tools/api_surface.txt:\n")
    for line in difflib.unified_diff(
        committed, current, "committed", "current", lineterm=""
    ):
        print(line)
    print("\nif intentional: python tools/check_public_api.py --update")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
